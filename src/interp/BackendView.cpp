//===- BackendView.cpp - Backend-visible view of lowered bytecode ---------===//
//
// Part of the earthcc project.
//
// Derives the backend-facing facts of one lowered function from its plain
// instruction stream: construct extents, the emission-order sync-slot
// numbering, live jump labels, and the per-pc presentation notes. The
// structural walk reads only opcodes, the BcCtor tags and the pool tables —
// never the statement tree — so a backend driven by this view agrees with
// the execution engines on slot numbering by construction. Src is consulted
// exclusively to resolve presentation notes (names, field strings, impure
// condition text), mirroring how the engines use it for diagnostics.
//
//===----------------------------------------------------------------------===//

#include "interp/BackendView.h"

#include "simple/Printer.h"

#include <cassert>

using namespace earthcc;

//===----------------------------------------------------------------------===//
// Structure decoding. The lowering is syntax-directed, so each construct's
// extent is recomputable from its Enter tag and the patched jump targets.
//===----------------------------------------------------------------------===//

int32_t earthcc::bcSeqEnd(const BytecodeFunction &BF, int32_t PC) {
  while (true) {
    const BcInsn &I = BF.Code[PC];
    if (I.Op == BcOp::EndSeq)
      return PC;
    if (I.Op == BcOp::Enter)
      PC = bcConstructEnd(BF, PC);
    else
      ++PC;
  }
}

int32_t earthcc::bcConstructEnd(const BytecodeFunction &BF, int32_t EnterPC) {
  const std::vector<BcInsn> &C = BF.Code;
  assert(C[EnterPC].Op == BcOp::Enter && "not a construct entry");
  switch (static_cast<BcCtor>(C[EnterPC].Ctor)) {
  case BcCtor::Seq:
    // Enter, children..., EndSeq.
    return bcSeqEnd(BF, EnterPC + 1) + 1;
  case BcCtor::If: {
    // Enter, Br, then..., ThenEnd, else..., ElseEnd, EndCompound; both
    // EndSeqs target the EndCompound.
    int32_t ThenEnd = bcSeqEnd(BF, EnterPC + 2);
    return C[ThenEnd].A + 1;
  }
  case BcCtor::While:
    // Enter, LoopCond, body..., BodyEnd; LoopCond.B == BodyEnd + 1.
    return bcSeqEnd(BF, EnterPC + 2) + 1;
  case BcCtor::DoWhile:
    // Enter, Enter(body), body..., BodyEnd, LoopCond.
    return bcSeqEnd(BF, EnterPC + 2) + 2;
  case BcCtor::Switch: {
    // Enter, Switch, cases..., default..., EndCompound; every case's and
    // the default's EndSeq target the EndCompound.
    int32_t DefaultEnd = bcSeqEnd(BF, C[EnterPC + 1].A);
    return C[DefaultEnd].A + 1;
  }
  case BcCtor::Forall: {
    // Enter, ForallInit, init..., InitEnd, ForallCond, step..., StepEnd,
    // Join; ForallCond.B == the Join.
    int32_t Cond = bcSeqEnd(BF, EnterPC + 2) + 1;
    return C[Cond].B + 1;
  }
  case BcCtor::Par:
    // Enter, ParSpawn, Join (branches are out-of-line fiber regions).
    return EnterPC + 3;
  case BcCtor::None:
  case BcCtor::DoWhileBody:
    break;
  }
  assert(false && "untagged or interior Enter has no construct extent");
  return EnterPC + 1;
}

namespace {

/// Builds one function's view. The sync-slot scan visits instructions in
/// *emission order*: pc order within a region, with fiber-entry regions
/// (parallel branches, forall bodies) spliced in at their spawn sites.
class ViewBuilder {
public:
  ViewBuilder(const BytecodeFunction &BF, BcBackendView &V) : BF(BF), V(V) {}

  void run() {
    const size_t N = BF.Code.size();
    V.BF = &BF;
    V.SyncSlotAt.assign(N, -1);
    V.LiveLabel.assign(N, 0);
    V.Notes.resize(N);

    for (size_t PC = 0; PC != N; ++PC)
      if (BF.Code[PC].Op == BcOp::ImplicitRet) {
        V.RetPC = static_cast<int32_t>(PC);
        break;
      }
    assert(V.RetPC >= 0 && "every function terminates in an ImplicitRet");

    allocRegion(0);
    V.SyncSlotCount = NextSlot;
    markLiveLabels();
    for (size_t PC = 0; PC != N; ++PC)
      fillNotes(static_cast<int32_t>(PC));
  }

private:
  //===--------------------------------------------------------------------===
  // Sync-slot allocation.
  //===--------------------------------------------------------------------===

  /// Allocates sync slots for the region starting at \p PC, in emission
  /// order. A region ends at its frame-popping jump (EndSeq -> RetPC) or at
  /// the ImplicitRet itself; interior EndSeqs (sequence pops targeting a
  /// loop condition or an EndCompound) are just scanned past, since the
  /// instructions of every nested construct lie between its Enter and the
  /// region's end in pc order.
  void allocRegion(int32_t PC) {
    while (true) {
      const BcInsn &I = BF.Code[PC];
      switch (I.Op) {
      case BcOp::ImplicitRet:
        return;
      case BcOp::EndSeq:
        if (I.A == V.RetPC)
          return;
        break;
      case BcOp::Assign:
        // A remote read is the only split-phase Assign shape.
        if (static_cast<RValueKind>(I.RK) == RValueKind::Load &&
            loadLocality(I) != Locality::Local)
          alloc(PC);
        break;
      case BcOp::BlkMov:
        // Both directions consume a slot number; only ReadToLocal's is
        // referenced (WriteFromLocal settles through WSYNC).
        alloc(PC);
        break;
      case BcOp::Call:
        // Every placed call burns a slot; it is referenced only when the
        // call produces a result.
        if (static_cast<CallPlacement>(I.Place) != CallPlacement::Default)
          alloc(PC);
        break;
      case BcOp::Atomic:
        if (static_cast<AtomicOp>(I.Sub) == AtomicOp::ValueOf)
          alloc(PC);
        break;
      case BcOp::ParSpawn:
        // The join slot precedes the branches; each branch fiber region is
        // then visited in spawn order, before anything after the join.
        alloc(PC);
        for (uint32_t Br = 0; Br != I.Words; ++Br)
          allocRegion(BF.BranchPool[I.B + Br]);
        break;
      case BcOp::ForallInit:
        // The forall's join slot precedes its init code.
        alloc(PC);
        break;
      case BcOp::ForallCond:
        // The body fiber region is spliced between init and step.
        allocRegion(I.A);
        break;
      default:
        break;
      }
      ++PC;
    }
  }

  void alloc(int32_t PC) { V.SyncSlotAt[PC] = static_cast<int32_t>(NextSlot++); }

  /// Locality of a Load RValue. BcInsn::Loc holds the store-side locality
  /// when the LValue is indirect, so consult the source in that one case.
  Locality loadLocality(const BcInsn &I) const {
    if (static_cast<LValueKind>(I.LK) == LValueKind::Var)
      return static_cast<Locality>(I.Loc);
    const auto &A = castStmt<AssignStmt>(*I.Src);
    return static_cast<const LoadRV &>(*A.R).Loc;
  }

  //===--------------------------------------------------------------------===
  // Dead-label elimination.
  //===--------------------------------------------------------------------===

  /// A pc is a live label only if control can arrive there other than by
  /// falling through: jump targets, case/branch entries, fiber entries, and
  /// the function entry itself. Everything else needs no label.
  void markLiveLabels() {
    V.LiveLabel[0] = 1;
    for (size_t PC = 0; PC != BF.Code.size(); ++PC) {
      const BcInsn &I = BF.Code[PC];
      switch (I.Op) {
      case BcOp::Br:
        V.LiveLabel[I.A] = 1;
        break;
      case BcOp::LoopCond:
      case BcOp::ForallCond:
        V.LiveLabel[I.A] = 1;
        V.LiveLabel[I.B] = 1;
        break;
      case BcOp::Switch:
        V.LiveLabel[I.A] = 1;
        for (uint32_t CI = 0; CI != I.Words; ++CI)
          V.LiveLabel[BF.CasePool[I.B + CI].second] = 1;
        break;
      case BcOp::EndSeq:
        // The fallthrough pop (A == PC + 1) is the dead-label case.
        if (I.A != static_cast<int32_t>(PC) + 1)
          V.LiveLabel[I.A] = 1;
        break;
      case BcOp::ParSpawn:
        for (uint32_t Br = 0; Br != I.Words; ++Br)
          V.LiveLabel[BF.BranchPool[I.B + Br]] = 1;
        break;
      default:
        break;
      }
    }
  }

  //===--------------------------------------------------------------------===
  // Presentation notes (the only Src consumer).
  //===--------------------------------------------------------------------===

  void fillNotes(int32_t PC) {
    const BcInsn &I = BF.Code[PC];
    BcBackendView::InsnNotes &N = V.Notes[PC];
    if (!I.Src)
      return;
    switch (I.Op) {
    case BcOp::Assign: {
      const auto &A = castStmt<AssignStmt>(*I.Src);
      switch (A.R->kind()) {
      case RValueKind::Load: {
        const auto &L = static_cast<const LoadRV &>(*A.R);
        N.AV = L.Base;
        N.RField = L.FieldName;
        N.RLoc = static_cast<uint8_t>(L.Loc);
        break;
      }
      case RValueKind::FieldRead: {
        const auto &FR = static_cast<const FieldReadRV &>(*A.R);
        N.AV = FR.StructVar;
        N.RField = FR.FieldName;
        break;
      }
      case RValueKind::AddrOfField: {
        const auto &AF = static_cast<const AddrOfFieldRV &>(*A.R);
        N.AV = AF.Base;
        N.RField = AF.FieldName;
        break;
      }
      default:
        break;
      }
      N.DstV = A.L.V;
      N.LField = A.L.FieldName;
      return;
    }
    case BcOp::Call: {
      const auto &C = castStmt<CallStmt>(*I.Src);
      N.DstV = C.Result;
      N.CalleeName = C.CalleeName;
      return;
    }
    case BcOp::BlkMov: {
      const auto &B = castStmt<BlkMovStmt>(*I.Src);
      N.AV = B.Ptr;
      N.BV = B.LocalStruct;
      return;
    }
    case BcOp::Atomic: {
      const auto &A = castStmt<AtomicStmt>(*I.Src);
      N.AV = A.SharedVar;
      N.DstV = A.Result;
      return;
    }
    case BcOp::Br:
      if (I.RK == BcBadCondRK)
        N.CondText = printRValue(*castStmt<IfStmt>(*I.Src).Cond);
      return;
    case BcOp::LoopCond:
      if (I.RK == BcBadCondRK)
        N.CondText = printRValue(*castStmt<WhileStmt>(*I.Src).Cond);
      return;
    case BcOp::ForallCond:
      if (I.RK == BcBadCondRK)
        N.CondText = printRValue(*castStmt<ForallStmt>(*I.Src).Cond);
      return;
    default:
      return;
    }
  }

  const BytecodeFunction &BF;
  BcBackendView &V;
  uint32_t NextSlot = 0;
};

} // namespace

BcBackendView earthcc::buildBackendView(const BytecodeModule &BM,
                                        const BytecodeFunction &BF) {
  (void)BM; // The view is per-function; the module parameter keeps the
            // signature stable for backends that will need shared-global
            // resolution.
  BcBackendView V;
  ViewBuilder(BF, V).run();
  return V;
}
