//===- Lower.h - SIMPLE -> bytecode lowering --------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-time lowering pass from the structured SIMPLE IR to the flat
/// bytecode the simulator's default engine executes. Lowering is pure
/// (the module is not modified) and deterministic; the emitted stream obeys
/// the one-instruction-per-step invariant documented in Bytecode.h.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_INTERP_LOWER_H
#define EARTHCC_INTERP_LOWER_H

#include "interp/Bytecode.h"

namespace earthcc {

/// Lowers every function of \p M into a fresh BytecodeModule.
std::shared_ptr<const BytecodeModule> lowerModule(const Module &M);

/// Returns \p M's lowered form, lowering on first use and memoizing in the
/// module's execution cache — so compile-once/run-many harnesses lower
/// exactly once no matter how many times they run the module.
const BytecodeModule &getOrLowerBytecode(const Module &M);

} // namespace earthcc

#endif // EARTHCC_INTERP_LOWER_H
