//===- Lower.h - SIMPLE -> bytecode lowering --------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-time lowering pass from the structured SIMPLE IR to the flat
/// bytecode the simulator's default engine executes. Lowering is pure
/// (the module is not modified) and deterministic; the emitted stream obeys
/// the one-instruction-per-step invariant documented in Bytecode.h.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_INTERP_LOWER_H
#define EARTHCC_INTERP_LOWER_H

#include "interp/Bytecode.h"

namespace earthcc {

/// Lowers every function of \p M into a fresh BytecodeModule (both the
/// plain and the fused instruction streams — see Bytecode.h).
///
/// \p Threads drives the per-function bodies over a thread pool (functions
/// are independent once the serial frame-layout pass has run): 1 lowers
/// serially on the caller's thread, 0 uses the host's hardware concurrency,
/// N uses N workers. Output is bit-identical at every thread count — each
/// task writes only its own pre-allocated BytecodeFunction, so the result
/// is a pure function of the module regardless of scheduling.
std::shared_ptr<const BytecodeModule> lowerModule(const Module &M,
                                                  unsigned Threads = 1);

/// Returns \p M's lowered form, lowering on first use and memoizing in the
/// module's execution cache — so compile-once/run-many harnesses lower
/// exactly once no matter how many times they run the module. \p Threads
/// applies only when this call performs the lowering (see lowerModule).
const BytecodeModule &getOrLowerBytecode(const Module &M,
                                         unsigned Threads = 1);

} // namespace earthcc

#endif // EARTHCC_INTERP_LOWER_H
