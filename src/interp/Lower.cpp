//===- Lower.cpp - SIMPLE -> bytecode lowering -----------------------------===//
//
// Part of the earthcc project.
//
// Flattens each function's structured statement tree into the linear
// instruction stream described in Bytecode.h. The cardinal rule is the
// one-instruction-per-step invariant: every step the AST walker would take
// (basic statement, control push/pop, condition evaluation, join check)
// becomes exactly one instruction, so fiber preemption quanta, step fuel,
// and therefore the whole simulated schedule are preserved bit-for-bit.
//
// Field usage per opcode (the A/B/Off/Words overloads):
//
//   Assign   RK/LK/Sub as in the IR; A = base/struct slot of the RValue;
//            Dst = target slot (Var) or base/struct slot (Store/FieldWrite);
//            Off = RValue-side word offset, B = LValue-side word offset;
//            Loc = locality of the Load (LK == Var) or the Store.
//   Call     Sub = Intrinsic, Place = CallPlacement, Callee set for user
//            calls; A = ArgPool begin, Words = arg count; Y = placement
//            operand; Dst = result slot or -1.
//   Return   X = value operand (Kind None for a bare return).
//   BlkMov   Sub = BlkMovDir; A = pointer slot; B = local-struct slot.
//   Atomic   Sub = AtomicOp; A = frame slot of a function-scope shared
//            variable or -1; B = module-shared index when A == -1;
//            X = value operand; Dst = result slot (ValueOf).
//   Br       cond in RK/Sub/X/Y; A = else target.
//   LoopCond cond in RK/Sub/X/Y; A = true target, B = false target.
//   Switch   X = scrutinee; A = default target; B = CasePool begin,
//            Words = case count. After buildSwitchDispatch: Sub =
//            BcSwitchMode; Dense uses Dst = JumpTables index, Sorted uses
//            Dst = SortedCasePool begin with Off = deduplicated entry
//            count. CasePool itself stays in source order (backends).
//   EndSeq   A = jump target.
//   ParSpawn B = BranchPool begin, Words = branch count.
//   ForallCond cond in RK/Sub/X/Y; A = body fiber entry, B = join target.
//
//===----------------------------------------------------------------------===//

#include "interp/Lower.h"

#include "simple/CommSites.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace earthcc;

namespace {

/// Condition-shape marker for conditions that are not pure (parity with the
/// AST engine's pureAvail error path). Shared with fusion and the backends.
constexpr uint8_t BadCondRK = BcBadCondRK;

class FunctionLowering {
public:
  FunctionLowering(const BytecodeModule &BM, BytecodeFunction &BF,
                   const CommSiteTable &Sites)
      : BM(BM), BF(BF), Sites(Sites) {}

  void run() {
    const SeqStmt &Body = BF.Fn->body();
    lowerSeqChildren(Body);
    int32_t BodyEnd = emit(BcOp::EndSeq);
    patch(BodyEnd, &BcInsn::A, BodyEnd + 1);
    RetPC = emit(BcOp::ImplicitRet);
    // Fiber-entry regions (parallel branches, forall bodies) go after the
    // main stream; lowering one may enqueue more.
    for (size_t I = 0; I != Pending.size(); ++I) {
      PendingRegion R = Pending[I]; // Copy: Pending may reallocate below.
      int32_t Entry = pc();
      if (R.PatchInsn >= 0)
        BF.Code[R.PatchInsn].*R.PatchField = Entry;
      else
        BF.BranchPool[R.PatchPool] = Entry;
      lowerFiberRegion(*R.Entry);
    }
  }

private:
  //===--------------------------------------------------------------------===
  // Emission helpers.
  //===--------------------------------------------------------------------===

  int32_t pc() const { return static_cast<int32_t>(BF.Code.size()); }

  int32_t emit(BcOp Op, const Stmt *Src = nullptr) {
    BcInsn I;
    I.Op = Op;
    I.Src = Src;
    BF.Code.push_back(I);
    return pc() - 1;
  }

  /// The backend-facing construct tag of a non-basic statement (see BcCtor).
  static BcCtor ctorOf(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Seq:
      return castStmt<SeqStmt>(S).Parallel ? BcCtor::Par : BcCtor::Seq;
    case StmtKind::If:
      return BcCtor::If;
    case StmtKind::While:
      return castStmt<WhileStmt>(S).IsDoWhile ? BcCtor::DoWhile
                                              : BcCtor::While;
    case StmtKind::Switch:
      return BcCtor::Switch;
    case StmtKind::Forall:
      return BcCtor::Forall;
    default:
      assert(false && "basic statements are never entered");
      return BcCtor::None;
    }
  }

  void patch(int32_t Insn, int32_t BcInsn::*Field, int32_t Target) {
    BF.Code[Insn].*Field = Target;
  }

  /// Frame slot of \p V, or -1 when the variable has no storage in this
  /// frame (module-level variable) — the engine then reports the same
  /// "no storage" error the AST walker's slot() raises.
  int32_t slotOf(const Var *V) const {
    if (!V)
      return -1;
    size_t Id = V->id();
    if (Id >= BF.Slots.size() || BF.Slots[Id].V != V)
      return -1;
    return static_cast<int32_t>(Id);
  }

  BcOperand lowerOperand(const Operand &O) const {
    BcOperand B;
    if (O.isVar()) {
      B.Kind = BcOperand::K::Slot;
      B.Slot = slotOf(O.getVar());
      B.V = O.getVar();
      return B;
    }
    B.Kind = BcOperand::K::Const;
    const ConstantValue &C = O.getConst();
    B.Const = C.isInt() ? RtValue::makeInt(C.I) : RtValue::makeDbl(C.D);
    return B;
  }

  /// Encodes a pure condition RValue into \p I's RK/Sub/X/Y fields.
  void lowerCond(const RValue &R, BcInsn &I) const {
    switch (R.kind()) {
    case RValueKind::Opnd:
      I.RK = static_cast<uint8_t>(RValueKind::Opnd);
      I.X = lowerOperand(static_cast<const OpndRV &>(R).Val);
      return;
    case RValueKind::Unary: {
      const auto &U = static_cast<const UnaryRV &>(R);
      I.RK = static_cast<uint8_t>(RValueKind::Unary);
      I.Sub = static_cast<uint8_t>(U.Op);
      I.X = lowerOperand(U.Val);
      return;
    }
    case RValueKind::Binary: {
      const auto &B = static_cast<const BinaryRV &>(R);
      I.RK = static_cast<uint8_t>(RValueKind::Binary);
      I.Sub = static_cast<uint8_t>(B.Op);
      I.X = lowerOperand(B.A);
      I.Y = lowerOperand(B.B);
      return;
    }
    default:
      I.RK = BadCondRK; // "condition with memory access" at execution.
      return;
    }
  }

  //===--------------------------------------------------------------------===
  // Basic statements.
  //===--------------------------------------------------------------------===

  void lowerBasic(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      BcInsn &I = BF.Code[emit(BcOp::Assign, &S)];
      I.RK = static_cast<uint8_t>(A.R->kind());
      I.LK = static_cast<uint8_t>(A.L.Kind);
      switch (A.R->kind()) {
      case RValueKind::Opnd:
        I.X = lowerOperand(static_cast<const OpndRV &>(*A.R).Val);
        break;
      case RValueKind::Unary: {
        const auto &U = static_cast<const UnaryRV &>(*A.R);
        I.Sub = static_cast<uint8_t>(U.Op);
        I.X = lowerOperand(U.Val);
        break;
      }
      case RValueKind::Binary: {
        const auto &B = static_cast<const BinaryRV &>(*A.R);
        I.Sub = static_cast<uint8_t>(B.Op);
        I.X = lowerOperand(B.A);
        I.Y = lowerOperand(B.B);
        break;
      }
      case RValueKind::Load: {
        const auto &L = static_cast<const LoadRV &>(*A.R);
        I.A = slotOf(L.Base);
        I.Off = L.OffsetWords;
        I.Loc = static_cast<uint8_t>(L.Loc);
        break;
      }
      case RValueKind::FieldRead: {
        const auto &FR = static_cast<const FieldReadRV &>(*A.R);
        I.A = slotOf(FR.StructVar);
        I.Off = FR.OffsetWords;
        break;
      }
      case RValueKind::AddrOfField: {
        const auto &AF = static_cast<const AddrOfFieldRV &>(*A.R);
        I.A = slotOf(AF.Base);
        I.Off = AF.OffsetWords;
        break;
      }
      }
      I.Dst = slotOf(A.L.V);
      if (A.L.Kind != LValueKind::Var) {
        // Off carries the RValue-side offset; the LValue-side offset rides
        // in B (a Store LHS can coexist with a FieldRead RHS).
        I.B = static_cast<int32_t>(A.L.OffsetWords);
        I.Loc = static_cast<uint8_t>(A.L.Loc);
      }
      I.Site = Sites.idOf(&S); // -1 unless the assign is a comm site.
      return;
    }
    case StmtKind::Call: {
      const auto &C = castStmt<CallStmt>(S);
      int32_t ArgsBegin = static_cast<int32_t>(BF.ArgPool.size());
      for (const Operand &O : C.Args)
        BF.ArgPool.push_back(lowerOperand(O));
      BcInsn &I = BF.Code[emit(BcOp::Call, &S)];
      I.Sub = static_cast<uint8_t>(C.Intrin);
      I.Place = static_cast<uint8_t>(C.Placement);
      I.A = ArgsBegin;
      I.Words = static_cast<uint32_t>(C.Args.size());
      I.Dst = slotOf(C.Result);
      if (C.Placement == CallPlacement::OwnerOf ||
          C.Placement == CallPlacement::AtNode)
        I.Y = lowerOperand(C.PlacementArg);
      if (C.Callee)
        I.Callee = BM.function(C.Callee);
      return;
    }
    case StmtKind::Return: {
      const auto &R = castStmt<ReturnStmt>(S);
      BcInsn &I = BF.Code[emit(BcOp::Return, &S)];
      if (R.Val)
        I.X = lowerOperand(*R.Val);
      return;
    }
    case StmtKind::BlkMov: {
      const auto &B = castStmt<BlkMovStmt>(S);
      BcInsn &I = BF.Code[emit(BcOp::BlkMov, &S)];
      I.Sub = static_cast<uint8_t>(B.Dir);
      I.A = slotOf(B.Ptr);
      I.B = slotOf(B.LocalStruct);
      I.Words = B.Words;
      I.Site = Sites.idOf(&S);
      return;
    }
    case StmtKind::Atomic: {
      const auto &A = castStmt<AtomicStmt>(S);
      BcInsn &I = BF.Code[emit(BcOp::Atomic, &S)];
      I.Sub = static_cast<uint8_t>(A.Op);
      I.A = slotOf(A.SharedVar);
      if (I.A < 0) {
        auto It = BM.SharedGlobalIndex.find(A.SharedVar);
        I.B = It == BM.SharedGlobalIndex.end() ? -1 : It->second;
      }
      I.X = lowerOperand(A.Val);
      I.Dst = slotOf(A.Result);
      I.Site = Sites.idOf(&S);
      return;
    }
    default:
      assert(false && "not a basic statement");
    }
  }

  //===--------------------------------------------------------------------===
  // Structured control.
  //===--------------------------------------------------------------------===

  /// Lowers the children of a (sequential) sequence. The caller emits the
  /// terminating EndSeq, whose target depends on the construct.
  void lowerSeqChildren(const SeqStmt &Seq) {
    assert(!Seq.Parallel && "parallel sequence lowered via lowerCompound");
    for (const StmtPtr &Child : Seq.Stmts) {
      if (Child->isBasic()) {
        lowerBasic(*Child);
        continue;
      }
      // The walker spends one step pushing a non-basic child.
      BF.Code[emit(BcOp::Enter, Child.get())].Ctor =
          static_cast<uint8_t>(ctorOf(*Child));
      lowerCompound(*Child);
    }
  }

  /// Lowers one compound construct as a control-entry region: execution
  /// falls in at the first emitted instruction and leaves at the first
  /// instruction after the region.
  void lowerCompound(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Seq: {
      const auto &Seq = castStmt<SeqStmt>(S);
      if (Seq.Parallel) {
        int32_t Spawn = emit(BcOp::ParSpawn, &S);
        BF.Code[Spawn].B = static_cast<int32_t>(BF.BranchPool.size());
        BF.Code[Spawn].Words = static_cast<uint32_t>(Seq.Stmts.size());
        for (const StmtPtr &Branch : Seq.Stmts) {
          BF.BranchPool.push_back(-1);
          Pending.push_back({Branch.get(), -1, nullptr,
                             static_cast<int32_t>(BF.BranchPool.size()) - 1});
        }
        emit(BcOp::Join, &S);
        return;
      }
      // A nested sequential sequence: children, then its pop step.
      lowerSeqChildren(Seq);
      int32_t SeqEnd = emit(BcOp::EndSeq, &S);
      patch(SeqEnd, &BcInsn::A, SeqEnd + 1);
      return;
    }
    case StmtKind::If: {
      const auto &If = castStmt<IfStmt>(S);
      int32_t Br = emit(BcOp::Br, &S);
      lowerCond(*If.Cond, BF.Code[Br]);
      lowerSeqChildren(*If.Then);
      int32_t ThenEnd = emit(BcOp::EndSeq, If.Then.get());
      patch(Br, &BcInsn::A, pc());
      lowerSeqChildren(*If.Else);
      int32_t ElseEnd = emit(BcOp::EndSeq, If.Else.get());
      int32_t End = emit(BcOp::EndCompound, &S);
      patch(ThenEnd, &BcInsn::A, End);
      patch(ElseEnd, &BcInsn::A, End);
      return;
    }
    case StmtKind::Switch: {
      const auto &Sw = castStmt<SwitchStmt>(S);
      int32_t Dispatch = emit(BcOp::Switch, &S);
      BF.Code[Dispatch].X = lowerOperand(Sw.Val);
      int32_t CasesBegin = static_cast<int32_t>(BF.CasePool.size());
      BF.Code[Dispatch].B = CasesBegin;
      BF.Code[Dispatch].Words = static_cast<uint32_t>(Sw.Cases.size());
      for (const SwitchStmt::Case &C : Sw.Cases)
        BF.CasePool.emplace_back(C.Value, -1);
      std::vector<int32_t> Ends;
      for (size_t CI = 0; CI != Sw.Cases.size(); ++CI) {
        BF.CasePool[CasesBegin + static_cast<int32_t>(CI)].second = pc();
        lowerSeqChildren(*Sw.Cases[CI].Body);
        Ends.push_back(emit(BcOp::EndSeq, Sw.Cases[CI].Body.get()));
      }
      patch(Dispatch, &BcInsn::A, pc());
      lowerSeqChildren(*Sw.Default);
      Ends.push_back(emit(BcOp::EndSeq, Sw.Default.get()));
      int32_t End = emit(BcOp::EndCompound, &S);
      for (int32_t E : Ends)
        patch(E, &BcInsn::A, End);
      return;
    }
    case StmtKind::While: {
      const auto &W = castStmt<WhileStmt>(S);
      if (!W.IsDoWhile) {
        int32_t Cond = emit(BcOp::LoopCond, &S);
        lowerCond(*W.Cond, BF.Code[Cond]);
        patch(Cond, &BcInsn::A, pc()); // True: fall into the body.
        lowerSeqChildren(*W.Body);
        patch(emit(BcOp::EndSeq, W.Body.get()), &BcInsn::A, Cond);
        patch(Cond, &BcInsn::B, pc()); // False: leave the loop.
        return;
      }
      // do-while: the walker spends one step entering the body first.
      BF.Code[emit(BcOp::Enter, &S)].Ctor =
          static_cast<uint8_t>(BcCtor::DoWhileBody);
      int32_t Body = pc();
      lowerSeqChildren(*W.Body);
      int32_t BodyEnd = emit(BcOp::EndSeq, W.Body.get());
      int32_t Cond = emit(BcOp::LoopCond, &S);
      patch(BodyEnd, &BcInsn::A, Cond);
      lowerCond(*W.Cond, BF.Code[Cond]);
      patch(Cond, &BcInsn::A, Body);
      patch(Cond, &BcInsn::B, pc());
      return;
    }
    case StmtKind::Forall: {
      const auto &Fa = castStmt<ForallStmt>(S);
      emit(BcOp::ForallInit, &S);
      lowerSeqChildren(*Fa.Init);
      int32_t InitEnd = emit(BcOp::EndSeq, Fa.Init.get());
      int32_t Cond = emit(BcOp::ForallCond, &S);
      patch(InitEnd, &BcInsn::A, Cond);
      lowerCond(*Fa.Cond, BF.Code[Cond]);
      Pending.push_back({Fa.Body.get(), Cond, &BcInsn::A, -1});
      lowerSeqChildren(*Fa.Step);
      patch(emit(BcOp::EndSeq, Fa.Step.get()), &BcInsn::A, Cond);
      patch(Cond, &BcInsn::B, pc()); // False: proceed to the join.
      emit(BcOp::Join, &S);
      return;
    }
    default:
      assert(false && "basic statement lowered via lowerBasic");
    }
  }

  /// Lowers a fiber-entry region: the statement a freshly spawned fiber's
  /// control stack starts with. When its control unwinds, the fiber's frame
  /// pops (the walker's "control empty -> implicit void return" step), so
  /// every exit path leads to an ImplicitRet.
  void lowerFiberRegion(const Stmt &S) {
    if (const auto *Seq = dynCastStmt<SeqStmt>(&S); Seq && !Seq->Parallel) {
      lowerSeqChildren(*Seq);
      patch(emit(BcOp::EndSeq, Seq), &BcInsn::A, RetPC);
      return;
    }
    if (S.isBasic()) {
      // The AST walker cannot dispatch a bare basic statement from the
      // control stack; Simplify never produces one here. Execute it, then
      // fall into the frame pop.
      lowerBasic(S);
      emit(BcOp::ImplicitRet);
      return;
    }
    lowerCompound(S);
    emit(BcOp::ImplicitRet);
  }

  //===--------------------------------------------------------------------===
  // State.
  //===--------------------------------------------------------------------===

  struct PendingRegion {
    const Stmt *Entry;
    int32_t PatchInsn;            ///< Insn to patch, or -1 for a pool slot.
    int32_t BcInsn::*PatchField;  ///< Field within PatchInsn.
    int32_t PatchPool;            ///< BranchPool slot when PatchInsn < 0.
  };

  const BytecodeModule &BM;
  BytecodeFunction &BF;
  const CommSiteTable &Sites;
  std::vector<PendingRegion> Pending;
  int32_t RetPC = -1;
};

//===----------------------------------------------------------------------===//
// Superinstruction fusion (see Bytecode.h). A pure peephole over the
// finished stream: only the *head* instruction of a fusable pattern is
// rewritten, the pattern's tail stays plain, so the fused stream has the
// same length and the same jump targets as the unfused one. The engine
// accounts each fused step individually, so every observable (time,
// counters, steps, traces) is bit-identical to stepping the plain stream.
//===----------------------------------------------------------------------===//

/// Longest fusable run of 2 or 3 ("load-operand / Binary / store") steps.
constexpr uint32_t MaxAssignRun = 3;

/// A Const operand, or a slot that actually has frame storage. Operands
/// that would raise the engine's "no storage" diagnostic are left to the
/// plain opcode so the error path stays byte-for-byte identical.
bool fusableOperand(const BcOperand &O) {
  return O.Kind == BcOperand::K::Const ||
         (O.Kind == BcOperand::K::Slot && O.Slot >= 0);
}

/// Pure slot-to-slot assignment: a register copy (Opnd), a Unary, or a
/// Binary over slots/constants, stored to a slot. No memory access, no
/// blocking side effects — exactly the shape whose unfused execution is
/// "check availability, compute, bump Now, store".
bool isSimpleAssign(const BcInsn &I) {
  if (I.Op != BcOp::Assign || static_cast<LValueKind>(I.LK) != LValueKind::Var)
    return false;
  const auto RK = static_cast<RValueKind>(I.RK);
  if (RK != RValueKind::Opnd && RK != RValueKind::Unary &&
      RK != RValueKind::Binary)
    return false;
  if (I.Dst < 0 || !fusableOperand(I.X))
    return false;
  return RK != RValueKind::Binary || fusableOperand(I.Y);
}

/// Builds BF.FusedCode from BF.Code.
void buildFusedStream(BytecodeFunction &BF) {
  BF.FusedCode = BF.Code;
  const size_t N = BF.Code.size();
  for (size_t I = 0; I != N; ++I) {
    const BcInsn &Head = BF.Code[I];

    // EndSeq jumping to a LoopCond: the loop-back pop plus the next
    // iteration's compare-and-branch (the hottest two-step pattern — every
    // while/do-while iteration ends with it). Conditions with memory
    // access (BadCondRK) keep the plain pair so the failure fires on the
    // exact step it would unfused.
    if (Head.Op == BcOp::EndSeq && Head.A >= 0 &&
        static_cast<size_t>(Head.A) < N) {
      const BcInsn &Target = BF.Code[Head.A];
      if (Target.Op == BcOp::LoopCond && Target.RK != BadCondRK)
        BF.FusedCode[I].Op = BcOp::FusedEndLoop;
      continue;
    }

    // Runs of consecutive Enter steps: a nested construct whose first
    // child is itself a compound, or a do-while's construct-entry +
    // body-entry pair. Enter never blocks, never advances the simulated
    // clock and touches nothing but PC, so the run collapses into one
    // dispatch of Words PC bumps (each still accounted as a step). A jump
    // into the middle of a run lands on a shorter fused head or a plain
    // Enter — both execute identically.
    if (Head.Op == BcOp::Enter) {
      uint32_t Run = 1;
      while (I + Run < N && BF.Code[I + Run].Op == BcOp::Enter)
        ++Run;
      if (Run >= 2) {
        BF.FusedCode[I].Op = BcOp::FusedEnterRun;
        BF.FusedCode[I].Words = Run;
      }
      continue;
    }

    // Runs of pure slot-to-slot assigns: t = x->f style operand loads,
    // Binary arithmetic, and stores back to slots fuse into one dispatch
    // of up to MaxAssignRun steps. Words (unused by Assign) carries the
    // run length; the head keeps its own payload, the tail is read from
    // the plain stream at execution.
    if (isSimpleAssign(Head)) {
      uint32_t Run = 1;
      while (Run < MaxAssignRun && I + Run < N &&
             isSimpleAssign(BF.Code[I + Run]))
        ++Run;
      if (Run >= 2) {
        BF.FusedCode[I].Op = BcOp::FusedAssignRun;
        BF.FusedCode[I].Words = Run;
      }
    }
  }
}

/// Dense-table policy: a switch's deduplicated values get a jump table when
/// the value span wastes at most 3 holes per case (span <= 4 * cases) and
/// the table stays small in absolute terms; everything else binary-searches
/// a sorted copy. Duplicate case values keep the first occurrence, matching
/// the source-order linear scan the engines are specified against.
constexpr uint64_t MaxJumpTableSpan = 4096;

/// Annotates every Switch in BF.Code with its execution strategy
/// (BcSwitchMode in Sub) and builds the side tables. Runs after the
/// function's body is fully lowered — case targets in CasePool are final —
/// and before buildFusedStream, so FusedCode copies the annotated form.
/// Purely per-function and deterministic, so the parallel lowering fan-out
/// keeps its bit-identical-output contract.
void buildSwitchDispatch(BytecodeFunction &BF) {
  for (BcInsn &I : BF.Code) {
    if (I.Op != BcOp::Switch)
      continue;
    I.Sub = static_cast<uint8_t>(BcSwitchMode::Linear);
    if (I.Words == 0)
      continue; // Default-only: the empty linear scan is already optimal.

    // Deduplicate first-wins in source order, then sort by value.
    std::vector<std::pair<int64_t, int32_t>> Unique;
    Unique.reserve(I.Words);
    for (uint32_t CI = 0; CI != I.Words; ++CI) {
      const auto &Case = BF.CasePool[I.B + CI];
      bool Seen = false;
      for (const auto &U : Unique)
        if (U.first == Case.first) {
          Seen = true;
          break;
        }
      if (!Seen)
        Unique.push_back(Case);
    }
    std::sort(Unique.begin(), Unique.end());

    const int64_t Lo = Unique.front().first;
    const int64_t Hi = Unique.back().first;
    // Unsigned subtraction gives the correct span even across INT64 bounds;
    // Span == 0 then means the full 2^64 range (never dense).
    const uint64_t Span =
        static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
    if (Unique.size() >= 2 && Span != 0 && Span <= MaxJumpTableSpan &&
        Span <= 4 * Unique.size()) {
      I.Sub = static_cast<uint8_t>(BcSwitchMode::Dense);
      I.Dst = static_cast<int32_t>(BF.JumpTables.size());
      BcJumpTable T;
      T.Lo = Lo;
      T.Begin = static_cast<uint32_t>(BF.JumpPool.size());
      T.Size = static_cast<uint32_t>(Span);
      BF.JumpPool.resize(BF.JumpPool.size() + Span, -1);
      for (const auto &U : Unique)
        BF.JumpPool[T.Begin + static_cast<uint64_t>(U.first) -
                    static_cast<uint64_t>(Lo)] = U.second;
      BF.JumpTables.push_back(T);
    } else {
      I.Sub = static_cast<uint8_t>(BcSwitchMode::Sorted);
      I.Dst = static_cast<int32_t>(BF.SortedCasePool.size());
      I.Off = static_cast<uint32_t>(Unique.size());
      BF.SortedCasePool.insert(BF.SortedCasePool.end(), Unique.begin(),
                               Unique.end());
    }
  }
}

/// Fills the lowering-time inline caches (param word offsets, shared-cell
/// offsets) from the finished frame layout.
void buildLayoutCaches(BytecodeFunction &BF) {
  BF.ParamWordOffs.reserve(BF.ParamSlots.size());
  for (int32_t P : BF.ParamSlots)
    BF.ParamWordOffs.push_back(BF.Slots[P].WordOff);
  for (const BcSlot &S : BF.Slots)
    if (S.SharedCell)
      BF.SharedCellOffs.push_back(S.WordOff);
}

} // namespace

std::shared_ptr<const BytecodeModule> earthcc::lowerModule(const Module &M,
                                                           unsigned Threads) {
  auto BM = std::make_shared<BytecodeModule>();
  BM->M = &M;

  // Module-level shared variables, in the order the engines allocate their
  // node-0 cells at run start.
  for (const auto &G : M.globals())
    if (G->kind() == VarKind::Shared) {
      BM->SharedGlobalIndex[G.get()] =
          static_cast<int32_t>(BM->SharedGlobals.size());
      BM->SharedGlobals.push_back(G.get());
    }

  // First pass: frame layouts for every function, so calls can resolve
  // their callees while bodies are lowered in the second pass.
  for (const auto &F : M.functions()) {
    auto BF = std::make_unique<BytecodeFunction>();
    BF->Fn = F.get();
    const auto &Vars = F->vars();
    BF->Slots.reserve(Vars.size());
    uint32_t WordOff = 0;
    for (size_t I = 0; I != Vars.size(); ++I) {
      const Var *V = Vars[I].get();
      assert(V->id() == I && "variable ids must be dense and ordered");
      BcSlot S;
      S.WordOff = WordOff;
      S.Words = std::max(1u, V->type()->sizeInWords());
      S.SharedCell = V->kind() == VarKind::Shared;
      S.V = V;
      WordOff += S.Words;
      BF->Slots.push_back(S);
    }
    BF->FrameWords = WordOff;
    for (const Var *P : F->params())
      BF->ParamSlots.push_back(static_cast<int32_t>(P->id()));
    buildLayoutCaches(*BF);
    BM->ByFn[F.get()] = BF.get();
    BM->Funcs.push_back(std::move(BF));
  }

  // Comm-site ids, assigned serially before the (possibly parallel) body
  // pass: the table is a pure function of the module, read-only below, so
  // BcInsn::Site is identical at every thread count.
  CommSiteTable Sites = buildCommSiteTable(M);
  BM->NumSites = static_cast<uint32_t>(Sites.size());

  // Second pass: function bodies. After the frame-layout pass every
  // function is independent (a task reads only the shared ByFn /
  // SharedGlobalIndex maps and the site table, frozen above, and writes
  // only its own BytecodeFunction), so the bodies can lower concurrently;
  // each result lands in its pre-allocated Funcs slot, making the output
  // identical at every thread count.
  auto LowerOne = [&BM, &Sites](size_t I) {
    BytecodeFunction &BF = *BM->Funcs[I];
    FunctionLowering(*BM, BF, Sites).run();
    buildSwitchDispatch(BF);
    buildFusedStream(BF);
  };
  if (Threads == 0)
    Threads = ThreadPool::hardwareThreads();
  size_t Lanes = std::min<size_t>(Threads, BM->Funcs.size());
  if (Lanes <= 1) {
    for (size_t I = 0; I != BM->Funcs.size(); ++I)
      LowerOne(I);
  } else {
    ThreadPool Pool(static_cast<unsigned>(Lanes));
    Pool.parallelFor(BM->Funcs.size(), LowerOne);
  }
  return BM;
}

const BytecodeModule &earthcc::getOrLowerBytecode(const Module &M,
                                                  unsigned Threads) {
  std::shared_ptr<void> &Cache = M.execCache();
  if (!Cache)
    Cache = std::const_pointer_cast<BytecodeModule>(lowerModule(M, Threads));
  return *static_cast<const BytecodeModule *>(Cache.get());
}
