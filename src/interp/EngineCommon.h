//===- EngineCommon.h - Shared execution-engine helpers ---------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value semantics shared by the two execution engines (the AST walker in
/// Interp.cpp and the bytecode engine in Bytecode.cpp). Both engines must
/// produce bit-identical simulated results, so the pure value computations
/// live here exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_INTERP_ENGINECOMMON_H
#define EARTHCC_INTERP_ENGINECOMMON_H

#include "earth/Runtime.h"
#include "simple/Expr.h"

#include <limits>
#include <string>

namespace earthcc {
namespace interp {

/// Unwinds to the event loop on runtime errors. The interpreter is a
/// simulation sandbox, so this is a tool-level error path, not library
/// control flow.
struct RuntimeFailure {
  std::string Message;
};

[[noreturn]] inline void fail(std::string Message) {
  throw RuntimeFailure{std::move(Message)};
}

inline bool isNullish(const RtValue &V) {
  return (V.K == RtValue::Kind::Int && V.I == 0) ||
         (V.K == RtValue::Kind::Ptr && V.P.isNull());
}

/// The simulated machine's integers behave like 64-bit hardware registers:
/// overflow wraps in two's complement. Doing the arithmetic in unsigned
/// keeps that behavior defined in C++ (signed overflow is UB and the
/// randomized property tests do reach it).
inline int64_t wrapAdd(int64_t X, int64_t Y) {
  return static_cast<int64_t>(static_cast<uint64_t>(X) +
                              static_cast<uint64_t>(Y));
}
inline int64_t wrapSub(int64_t X, int64_t Y) {
  return static_cast<int64_t>(static_cast<uint64_t>(X) -
                              static_cast<uint64_t>(Y));
}
inline int64_t wrapMul(int64_t X, int64_t Y) {
  return static_cast<int64_t>(static_cast<uint64_t>(X) *
                              static_cast<uint64_t>(Y));
}

/// double -> int64 with saturation, NaN -> 0. The plain cast is undefined
/// for out-of-range values; every conversion the toolchain performs —
/// engine DoubleToInt steps and the frontend's compile-time folding of
/// double literals in int context — must agree on this one definition, or
/// constant-folded programs could diverge from interpreted ones.
inline int64_t doubleToIntSat(double D) {
  constexpr double Lim = 9223372036854775808.0; // 2^63
  if (D >= -Lim && D < Lim)
    return static_cast<int64_t>(D);
  if (D != D)
    return 0;
  return D < 0 ? std::numeric_limits<int64_t>::min()
               : std::numeric_limits<int64_t>::max();
}

inline RtValue evalBinary(BinaryOp Op, const RtValue &A, const RtValue &B) {
  if (A.K == RtValue::Kind::Ptr || B.K == RtValue::Kind::Ptr) {
    bool Eq;
    if (A.K == RtValue::Kind::Ptr && B.K == RtValue::Kind::Ptr)
      Eq = A.P == B.P;
    else if (A.K == RtValue::Kind::Ptr)
      Eq = A.P.isNull() && isNullish(B);
    else
      Eq = B.P.isNull() && isNullish(A);
    if (Op == BinaryOp::Eq)
      return RtValue::makeInt(Eq ? 1 : 0);
    if (Op == BinaryOp::Ne)
      return RtValue::makeInt(Eq ? 0 : 1);
    fail("invalid pointer arithmetic");
  }

  if (A.K == RtValue::Kind::Dbl || B.K == RtValue::Kind::Dbl) {
    double X = A.K == RtValue::Kind::Dbl ? A.D : static_cast<double>(A.I);
    double Y = B.K == RtValue::Kind::Dbl ? B.D : static_cast<double>(B.I);
    switch (Op) {
    case BinaryOp::Add: return RtValue::makeDbl(X + Y);
    case BinaryOp::Sub: return RtValue::makeDbl(X - Y);
    case BinaryOp::Mul: return RtValue::makeDbl(X * Y);
    case BinaryOp::Div:
      if (Y == 0.0)
        fail("floating division by zero");
      return RtValue::makeDbl(X / Y);
    case BinaryOp::Rem:
      fail("'%' on doubles");
    case BinaryOp::Lt: return RtValue::makeInt(X < Y);
    case BinaryOp::Le: return RtValue::makeInt(X <= Y);
    case BinaryOp::Gt: return RtValue::makeInt(X > Y);
    case BinaryOp::Ge: return RtValue::makeInt(X >= Y);
    case BinaryOp::Eq: return RtValue::makeInt(X == Y);
    case BinaryOp::Ne: return RtValue::makeInt(X != Y);
    case BinaryOp::And: return RtValue::makeInt(X != 0.0 && Y != 0.0);
    case BinaryOp::Or: return RtValue::makeInt(X != 0.0 || Y != 0.0);
    }
  }

  int64_t X = A.I, Y = B.I;
  switch (Op) {
  case BinaryOp::Add: return RtValue::makeInt(wrapAdd(X, Y));
  case BinaryOp::Sub: return RtValue::makeInt(wrapSub(X, Y));
  case BinaryOp::Mul: return RtValue::makeInt(wrapMul(X, Y));
  case BinaryOp::Div:
    if (Y == 0)
      fail("integer division by zero");
    // INT64_MIN / -1 wraps to INT64_MIN (the one overflowing division).
    if (Y == -1)
      return RtValue::makeInt(wrapSub(0, X));
    return RtValue::makeInt(X / Y);
  case BinaryOp::Rem:
    if (Y == 0)
      fail("integer remainder by zero");
    if (Y == -1)
      return RtValue::makeInt(0);
    return RtValue::makeInt(X % Y);
  case BinaryOp::Lt: return RtValue::makeInt(X < Y);
  case BinaryOp::Le: return RtValue::makeInt(X <= Y);
  case BinaryOp::Gt: return RtValue::makeInt(X > Y);
  case BinaryOp::Ge: return RtValue::makeInt(X >= Y);
  case BinaryOp::Eq: return RtValue::makeInt(X == Y);
  case BinaryOp::Ne: return RtValue::makeInt(X != Y);
  case BinaryOp::And: return RtValue::makeInt(X != 0 && Y != 0);
  case BinaryOp::Or: return RtValue::makeInt(X != 0 || Y != 0);
  }
  fail("bad binary operator");
}

inline RtValue evalUnary(UnaryOp Op, const RtValue &A) {
  switch (Op) {
  case UnaryOp::Neg:
    return A.K == RtValue::Kind::Dbl ? RtValue::makeDbl(-A.D)
                                     : RtValue::makeInt(wrapSub(0, A.I));
  case UnaryOp::Not:
    return RtValue::makeInt(A.truthy() ? 0 : 1);
  case UnaryOp::IntToDouble:
    return RtValue::makeDbl(static_cast<double>(A.I));
  case UnaryOp::DoubleToInt:
    if (A.K != RtValue::Kind::Dbl)
      return A;
    return RtValue::makeInt(doubleToIntSat(A.D));
  }
  fail("bad unary operator");
}

/// Pre-interned SU-track span labels, so the trace path never builds a
/// "su:" + op string at runtime (callers pass the matching constant).
inline constexpr const char *SuReadDataLabel = "su:read-data";
inline constexpr const char *SuWriteDataLabel = "su:write-data";
inline constexpr const char *SuBlkMovLabel = "su:blkmov";
inline constexpr const char *SuAtomicLabel = "su:atomic";

} // namespace interp
} // namespace earthcc

#endif // EARTHCC_INTERP_ENGINECOMMON_H
