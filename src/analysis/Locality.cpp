//===- Locality.cpp -------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Locality.h"

#include <map>
#include <set>

using namespace earthcc;

namespace {

/// Collects, per function, which pointer parameters are owner-placed at
/// EVERY call site (and which functions are called at all).
struct CallSiteFacts {
  // Param index -> still a candidate?
  std::map<const Function *, std::vector<bool>> Candidates;
  std::set<const Function *> Called;

  explicit CallSiteFacts(const Module &M) {
    for (const auto &F : M.functions())
      Candidates[F.get()] =
          std::vector<bool>(F->params().size(), true);
    for (const auto &F : M.functions())
      forEachStmt(F->body(), [this](const Stmt &S) { visit(S); });
    // Entry points (functions with no call sites) keep no candidates:
    // their arguments come from outside any placement contract.
    for (auto &[Fn, Flags] : Candidates)
      if (!Called.count(Fn))
        Flags.assign(Flags.size(), false);
  }

private:
  void visit(const Stmt &S) {
    const auto *C = dynCastStmt<CallStmt>(&S);
    if (!C || !C->Callee)
      return;
    Called.insert(C->Callee);
    auto &Flags = Candidates[C->Callee];
    for (size_t I = 0; I != Flags.size() && I != C->Args.size(); ++I) {
      if (!Flags[I])
        continue;
      bool OwnerPlaced = C->Placement == CallPlacement::OwnerOf &&
                         C->PlacementArg.isVar() && C->Args[I].isVar() &&
                         C->PlacementArg.getVar() == C->Args[I].getVar();
      if (!OwnerPlaced)
        Flags[I] = false;
    }
  }
};

/// True if \p F ever reassigns \p P (which would invalidate the local
/// contract established at entry).
bool paramReassigned(const Function &F, const Var *P) {
  bool Reassigned = false;
  forEachStmt(F.body(), [&](const Stmt &S) {
    if (Reassigned)
      return;
    if (const auto *A = dynCastStmt<AssignStmt>(&S)) {
      if (A->L.Kind == LValueKind::Var && A->L.V == P)
        Reassigned = true;
      return;
    }
    if (const auto *C = dynCastStmt<CallStmt>(&S)) {
      if (C->Result == P)
        Reassigned = true;
      return;
    }
    if (const auto *At = dynCastStmt<AtomicStmt>(&S))
      if (At->Result == P)
        Reassigned = true;
  });
  return Reassigned;
}

/// Downgrades every access through \p P in \p F to Local.
unsigned localizeAccesses(Function &F, const Var *P) {
  unsigned Count = 0;
  forEachStmt(F.body(), [&](Stmt &S) {
    auto *A = dynCastStmt<AssignStmt>(&S);
    if (!A)
      return;
    if (auto *L = dynCast<LoadRV>(A->R.get()))
      if (L->Base == P && L->Loc != Locality::Local) {
        L->Loc = Locality::Local;
        ++Count;
      }
    if (A->L.Kind == LValueKind::Store && A->L.V == P &&
        A->L.Loc != Locality::Local) {
      A->L.Loc = Locality::Local;
      ++Count;
    }
  });
  return Count;
}

} // namespace

unsigned earthcc::inferLocality(Module &M, Statistics &Stats) {
  CallSiteFacts Facts(M);
  unsigned Localized = 0;
  for (const auto &F : M.functions()) {
    const auto &Flags = Facts.Candidates[F.get()];
    for (size_t I = 0; I != Flags.size(); ++I) {
      if (!Flags[I])
        continue;
      const Var *P = F->params()[I];
      if (!P->type()->isPointer() || P->type()->isLocalPointer())
        continue;
      if (paramReassigned(*F, P))
        continue;
      Stats.add("locality.params_marked");
      unsigned N = localizeAccesses(*F, P);
      Stats.add("locality.accesses_localized", N);
      Localized += N;
    }
  }
  return Localized;
}
