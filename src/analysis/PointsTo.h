//===- PointsTo.h - Flow-insensitive points-to analysis ---------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module-wide, flow-insensitive, field-sensitive points-to analysis in
/// the spirit of the heap/connection analyses the paper builds on (Ghiya &
/// Hendren). It provides the two queries the placement analysis needs:
///
///  - pointsTo(v): the set of abstract memory words a pointer variable may
///    target;
///  - mayAlias(p, f, q, g): whether `p->f` and `q->g` may touch the same
///    word *through different base variables* (the paper's
///    `accessedViaAlias` uses this to distinguish direct accesses, which do
///    not kill placement tuples, from aliased ones, which do).
///
/// Abstract objects are (a) one allocation site per pmalloc statement and
/// (b) one *region anchor* per pointer-typed parameter. Anchors model the
/// whole data structure reachable from the parameter (connection-analysis
/// style): loading a pointer field out of an anchor yields the anchor
/// itself, so everything reachable from one parameter is conflated, while
/// distinct parameters stay distinct — exactly the precision the paper's
/// examples rely on (`p` and `t` in Figure 7 do not alias).
///
/// Targets are (object, word-offset) pairs, so `&(p->f)` interior pointers
/// and nested-struct accesses resolve to precise words.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_ANALYSIS_POINTSTO_H
#define EARTHCC_ANALYSIS_POINTSTO_H

#include "simple/Function.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace earthcc {

/// Flow-insensitive Andersen-style points-to over one Module.
class PointsToAnalysis {
public:
  /// An abstract memory word: object id + word offset from object start.
  struct Target {
    unsigned Obj = 0;
    unsigned Off = 0;
    friend bool operator<(Target A, Target B) {
      return A.Obj != B.Obj ? A.Obj < B.Obj : A.Off < B.Off;
    }
    friend bool operator==(Target A, Target B) {
      return A.Obj == B.Obj && A.Off == B.Off;
    }
  };
  /// Hash for Target, for the hashed flat sets layered on the analysis
  /// (e.g. SideEffects' summaries).
  struct TargetHash {
    size_t operator()(Target T) const {
      return std::hash<unsigned long long>()(
          (static_cast<unsigned long long>(T.Obj) << 32) | T.Off);
    }
  };
  using TargetSet = std::set<Target>;

  /// Runs the analysis on \p M (must outlive this object).
  explicit PointsToAnalysis(const Module &M);

  /// The words \p V may point to. Empty for non-pointers and never-assigned
  /// pointers.
  const TargetSet &pointsTo(const Var *V) const;

  /// The abstract words `P->[OffP]` may denote: pts(P) shifted by OffP.
  TargetSet accessedWords(const Var *P, unsigned OffP) const;

  /// True if an access at offset \p OffP via \p P may touch the same word
  /// as an access at offset \p OffQ via \p Q. Identical base variables are
  /// compared by offset only (that is the "direct" case).
  bool mayAlias(const Var *P, unsigned OffP, const Var *Q,
                unsigned OffQ) const;

  /// Number of abstract objects (for diagnostics and tests).
  unsigned objectCount() const { return static_cast<unsigned>(Objects.size()); }

  /// Human-readable description of an object ("anchor f.p", "site S12@g").
  std::string describeObject(unsigned Obj) const;

  /// True if \p Obj is a parameter region anchor.
  bool isAnchor(unsigned Obj) const { return Objects[Obj].IsAnchor; }

private:
  struct Object {
    bool IsAnchor = false;        ///< Anchor or derived region.
    unsigned Root = 0;            ///< Root anchor id (self for anchors).
    const StructType *Ty = nullptr; ///< Pointee struct (null: untyped).
    std::string Name;
  };

  /// The derived region "objects of struct type \p S reachable from the
  /// root anchor of \p Obj". Our dialect has no casts, so heap objects are
  /// monomorphic and type segregation of regions is sound; it gives the
  /// connection-analysis-style precision the paper relies on (list cells
  /// reachable from a village do not alias the village's own fields).
  unsigned regionOf(unsigned Obj, const StructType *S);

  // Node = points-to set holder: a Var, a struct-var word, or an object word.
  using NodeId = unsigned;
  NodeId varNode(const Var *V);
  NodeId varFieldNode(const Var *StructVar, unsigned Off);
  NodeId wordNode(Target T);
  NodeId retNode(const Function *F);

  void collect(const Module &M);
  void collectFunction(const Function &F);
  void collectStmt(const Function &F, const Stmt &S);
  void solve();

  bool addTargets(NodeId N, const TargetSet &Ts);

  // Constraint kinds beyond plain copy edges.
  struct LoadConstraint {
    NodeId Dst;
    NodeId Base;  ///< Var node holding the pointer.
    unsigned Off; ///< Word offset added to each target.
    const Type *ValueTy = nullptr; ///< Type of the loaded pointer value.
  };
  struct StoreConstraint {
    NodeId Base;
    unsigned Off;
    NodeId Src;
  };
  struct OffsetConstraint { ///< Dst ⊇ { (o, s+Off) | (o,s) ∈ pts(Base) }.
    NodeId Dst;
    NodeId Base;
    unsigned Off;
  };

  std::vector<Object> Objects;
  std::map<std::pair<unsigned, const StructType *>, unsigned> Regions;
  std::map<const Var *, NodeId> VarNodes;
  std::map<std::pair<const Var *, unsigned>, NodeId> VarFieldNodes;
  std::map<Target, NodeId> WordNodes;
  std::map<const Function *, NodeId> RetNodes;

  std::vector<TargetSet> Pts;                  ///< Indexed by NodeId.
  std::vector<std::set<NodeId>> CopyEdges;     ///< Src -> {Dst}.
  std::vector<LoadConstraint> Loads;
  std::vector<StoreConstraint> Stores;
  std::vector<OffsetConstraint> Offsets;

  TargetSet Empty;
};

} // namespace earthcc

#endif // EARTHCC_ANALYSIS_POINTSTO_H
