//===- SideEffects.cpp ----------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffects.h"

#include <cassert>

using namespace earthcc;

SideEffects::SideEffects(const Module &M, const PointsToAnalysis &PT)
    : PT(PT) {
  computeSummaries(M);
  // Precompute per-statement effects eagerly (cheap, keeps queries const).
  for (const auto &F : M.functions())
    computeStmt(F->body());
}

//===----------------------------------------------------------------------===//
// Function heap summaries.
//===----------------------------------------------------------------------===//

void SideEffects::computeSummaries(const Module &M) {
  // Collect each function's own direct heap accesses plus call edges.
  std::unordered_map<const Function *, std::vector<const Function *>> Callees;
  for (const auto &F : M.functions()) {
    WordSet Reads, Writes;
    std::vector<const Function *> Calls;
    forEachStmt(F->body(), [&](const Stmt &S) {
      switch (S.kind()) {
      case StmtKind::Assign: {
        const auto &A = castStmt<AssignStmt>(S);
        if (const auto *L = dynCast<LoadRV>(A.R.get()))
          for (auto T : PT.accessedWords(L->Base, L->OffsetWords))
            Reads.insert(T);
        if (A.L.Kind == LValueKind::Store)
          for (auto T : PT.accessedWords(A.L.V, A.L.OffsetWords))
            Writes.insert(T);
        return;
      }
      case StmtKind::BlkMov: {
        const auto &B = castStmt<BlkMovStmt>(S);
        for (unsigned W = 0; W != B.Words; ++W)
          for (auto T : PT.accessedWords(B.Ptr, W))
            (B.Dir == BlkMovDir::ReadToLocal ? Reads : Writes).insert(T);
        return;
      }
      case StmtKind::Call: {
        const auto &C = castStmt<CallStmt>(S);
        if (C.Callee)
          Calls.push_back(C.Callee);
        return;
      }
      default:
        return;
      }
    });
    SummaryReads[F.get()] = std::move(Reads);
    SummaryWrites[F.get()] = std::move(Writes);
    Callees[F.get()] = std::move(Calls);
  }

  // Close over the call graph (fixpoint handles recursion).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &F : M.functions()) {
      auto &Reads = SummaryReads[F.get()];
      auto &Writes = SummaryWrites[F.get()];
      for (const Function *Callee : Callees[F.get()]) {
        // Self-calls contribute nothing new; skipping them also keeps the
        // flat sets' no-insert-while-iterating rule trivially satisfied.
        if (Callee == F.get())
          continue;
        for (auto T : SummaryReads[Callee])
          Changed |= Reads.insert(T);
        for (auto T : SummaryWrites[Callee])
          Changed |= Writes.insert(T);
      }
    }
  }
}

const SideEffects::WordSet &
SideEffects::functionReads(const Function *F) const {
  auto It = SummaryReads.find(F);
  return It == SummaryReads.end() ? Empty : It->second;
}

const SideEffects::WordSet &
SideEffects::functionWrites(const Function *F) const {
  auto It = SummaryWrites.find(F);
  return It == SummaryWrites.end() ? Empty : It->second;
}

//===----------------------------------------------------------------------===//
// Per-statement effects.
//===----------------------------------------------------------------------===//

SideEffects::StmtEffects SideEffects::computeStmt(const Stmt &S) {
  if (auto It = Cache.find(&S); It != Cache.end())
    return It->second;

  StmtEffects E;
  auto merge = [&E](const StmtEffects &Child) {
    E.VarWrites.insert(Child.VarWrites.begin(), Child.VarWrites.end());
    E.Heap.insert(E.Heap.end(), Child.Heap.begin(), Child.Heap.end());
    E.CallReadWords.insert(Child.CallReadWords.begin(),
                           Child.CallReadWords.end());
    E.CallWriteWords.insert(Child.CallWriteWords.begin(),
                            Child.CallWriteWords.end());
    E.HasReturn |= Child.HasReturn;
  };

  switch (S.kind()) {
  case StmtKind::Assign: {
    const auto &A = castStmt<AssignStmt>(S);
    if (const auto *L = dynCast<LoadRV>(A.R.get()))
      E.Heap.push_back({L->Base, L->OffsetWords, /*IsWrite=*/false});
    switch (A.L.Kind) {
    case LValueKind::Var:
      E.VarWrites.insert(A.L.V);
      break;
    case LValueKind::FieldWrite:
      E.VarWrites.insert(A.L.V); // The struct variable is (partly) written.
      break;
    case LValueKind::Store:
      E.Heap.push_back({A.L.V, A.L.OffsetWords, /*IsWrite=*/true});
      break;
    }
    break;
  }
  case StmtKind::Call: {
    const auto &C = castStmt<CallStmt>(S);
    if (C.Result)
      E.VarWrites.insert(C.Result);
    if (C.Callee) {
      const auto &R = functionReads(C.Callee);
      const auto &W = functionWrites(C.Callee);
      E.CallReadWords.insert(R.begin(), R.end());
      E.CallWriteWords.insert(W.begin(), W.end());
    }
    break;
  }
  case StmtKind::Return:
    E.HasReturn = true;
    break;
  case StmtKind::BlkMov: {
    const auto &B = castStmt<BlkMovStmt>(S);
    if (B.Dir == BlkMovDir::ReadToLocal)
      E.VarWrites.insert(B.LocalStruct);
    for (unsigned W = 0; W != B.Words; ++W)
      E.Heap.push_back({B.Ptr, W, B.Dir == BlkMovDir::WriteFromLocal});
    break;
  }
  case StmtKind::Atomic: {
    const auto &A = castStmt<AtomicStmt>(S);
    if (A.Result)
      E.VarWrites.insert(A.Result);
    break;
  }
  case StmtKind::Seq: {
    const auto &Seq = castStmt<SeqStmt>(S);
    for (const auto &Child : Seq.Stmts)
      merge(computeStmt(*Child));
    break;
  }
  case StmtKind::If:
  case StmtKind::Switch:
  case StmtKind::While:
  case StmtKind::Forall:
    forEachChildSeq(S, [&](const SeqStmt &Child) { merge(computeStmt(Child)); });
    break;
  }

  for (const HeapAccess &H : E.Heap)
    (H.IsWrite ? E.HasHeapWrite : E.HasHeapRead) = true;

  Cache[&S] = E;
  return E;
}

const SideEffects::StmtEffects &SideEffects::effects(const Stmt &S) const {
  auto It = Cache.find(&S);
  assert(It != Cache.end() && "statement not covered by this SideEffects; "
                              "was it created after analysis?");
  return It->second;
}

bool SideEffects::varWritten(const Var *V, const Stmt &S) const {
  return effects(S).VarWrites.count(V) != 0;
}

bool SideEffects::containsReturn(const Stmt &S) const {
  return effects(S).HasReturn;
}

bool SideEffects::writesAnything(const Stmt &S) const {
  const StmtEffects &E = effects(S);
  return !E.VarWrites.empty() || E.HasHeapWrite || !E.CallWriteWords.empty();
}

bool SideEffects::blocksWriteTuples(const Stmt &S) const {
  const StmtEffects &E = effects(S);
  return !E.VarWrites.empty() || E.HasHeapWrite || !E.CallWriteWords.empty() ||
         E.HasReturn || E.HasHeapRead || !E.CallReadWords.empty();
}

bool SideEffects::directlyReads(const Var *P, const Stmt &S) const {
  for (const HeapAccess &H : effects(S).Heap)
    if (!H.IsWrite && H.Base == P)
      return true;
  return false;
}

bool SideEffects::directlyWrites(const Var *P, unsigned Off,
                                 const Stmt &S) const {
  for (const HeapAccess &H : effects(S).Heap)
    if (H.IsWrite && H.Base == P && H.Off == Off)
      return true;
  return false;
}

bool SideEffects::accessedViaAlias(const Var *P, unsigned Off, const Stmt &S,
                                   bool Write) const {
  const StmtEffects &E = effects(S);

  // Direct accesses via other base variables.
  for (const HeapAccess &H : E.Heap) {
    if (H.IsWrite != Write)
      continue;
    if (H.Base == P)
      continue; // Direct access: never an alias.
    if (PT.mayAlias(P, Off, H.Base, H.Off))
      return true;
  }

  // Call effects (always "via alias": the callee uses its own variables).
  // Walk pts(P) directly instead of materializing accessedWords(P, Off) —
  // this query runs per tuple per statement in the placement kill checks.
  const auto &Words = Write ? E.CallWriteWords : E.CallReadWords;
  if (Words.empty())
    return false;
  for (auto T : PT.pointsTo(P))
    if (Words.count({T.Obj, T.Off + Off}))
      return true;
  return false;
}
