//===- PointsTo.cpp -------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"

#include <cassert>

using namespace earthcc;

PointsToAnalysis::PointsToAnalysis(const Module &M) {
  collect(M);
  solve();
}

PointsToAnalysis::NodeId PointsToAnalysis::varNode(const Var *V) {
  auto It = VarNodes.find(V);
  if (It != VarNodes.end())
    return It->second;
  NodeId N = static_cast<NodeId>(Pts.size());
  Pts.emplace_back();
  CopyEdges.emplace_back();
  VarNodes[V] = N;
  return N;
}

PointsToAnalysis::NodeId
PointsToAnalysis::varFieldNode(const Var *StructVar, unsigned Off) {
  auto Key = std::make_pair(StructVar, Off);
  auto It = VarFieldNodes.find(Key);
  if (It != VarFieldNodes.end())
    return It->second;
  NodeId N = static_cast<NodeId>(Pts.size());
  Pts.emplace_back();
  CopyEdges.emplace_back();
  VarFieldNodes[Key] = N;
  return N;
}

PointsToAnalysis::NodeId PointsToAnalysis::wordNode(Target T) {
  auto It = WordNodes.find(T);
  if (It != WordNodes.end())
    return It->second;
  NodeId N = static_cast<NodeId>(Pts.size());
  Pts.emplace_back();
  CopyEdges.emplace_back();
  WordNodes[T] = N;
  return N;
}

PointsToAnalysis::NodeId PointsToAnalysis::retNode(const Function *F) {
  auto It = RetNodes.find(F);
  if (It != RetNodes.end())
    return It->second;
  NodeId N = static_cast<NodeId>(Pts.size());
  Pts.emplace_back();
  CopyEdges.emplace_back();
  RetNodes[F] = N;
  return N;
}

unsigned PointsToAnalysis::regionOf(unsigned Obj, const StructType *S) {
  unsigned Root = Objects[Obj].Root;
  if (Objects[Root].Ty == S)
    return Root; // Recursive structures fold back onto the root anchor.
  auto Key = std::make_pair(Root, S);
  auto It = Regions.find(Key);
  if (It != Regions.end())
    return It->second;
  unsigned Id = static_cast<unsigned>(Objects.size());
  Objects.push_back({/*IsAnchor=*/true, Root, S,
                     Objects[Root].Name + "/" +
                         (S ? S->name() : std::string("scalar"))});
  Regions[Key] = Id;
  return Id;
}

void PointsToAnalysis::collect(const Module &M) {
  for (const auto &F : M.functions()) {
    // Seed every pointer parameter with its own region anchor.
    for (const Var *P : F->params()) {
      if (!P->type()->isPointer())
        continue;
      unsigned Obj = static_cast<unsigned>(Objects.size());
      const Type *Pointee = P->type()->pointee();
      const StructType *Ty =
          Pointee->isStruct() ? Pointee->structType() : nullptr;
      Objects.push_back({/*IsAnchor=*/true, Obj, Ty,
                         "anchor " + F->name() + "." + P->name()});
      Pts[varNode(P)].insert({Obj, 0});
    }
  }
  for (const auto &F : M.functions())
    collectFunction(*F);
}

void PointsToAnalysis::collectFunction(const Function &F) {
  forEachStmt(F.body(), [this, &F](const Stmt &S) { collectStmt(F, S); });
}

void PointsToAnalysis::collectStmt(const Function &F, const Stmt &S) {
  switch (S.kind()) {
  case StmtKind::Assign: {
    const auto &A = castStmt<AssignStmt>(S);

    // Destination node (only pointer-valued flows matter).
    NodeId Dst;
    bool DstIsStore = false;
    const Var *StoreBase = nullptr;
    unsigned StoreOff = 0;
    switch (A.L.Kind) {
    case LValueKind::Var:
      if (!A.L.V->type()->isPointer())
        return;
      Dst = varNode(A.L.V);
      break;
    case LValueKind::FieldWrite:
      Dst = varFieldNode(A.L.V, A.L.OffsetWords);
      break;
    case LValueKind::Store:
      DstIsStore = true;
      StoreBase = A.L.V;
      StoreOff = A.L.OffsetWords;
      Dst = 0; // Unused.
      break;
    }

    // Source value: find the pointer-valued source node (if any).
    auto connect = [&](NodeId Src) {
      if (DstIsStore) {
        NodeId BaseNode = varNode(StoreBase);
        Stores.push_back({BaseNode, StoreOff, Src});
      } else {
        CopyEdges[Src].insert(Dst);
      }
    };

    switch (A.R->kind()) {
    case RValueKind::Opnd: {
      const auto &O = static_cast<const OpndRV &>(*A.R);
      if (O.Val.isVar() && O.Val.getVar()->type()->isPointer())
        connect(varNode(O.Val.getVar()));
      return;
    }
    case RValueKind::Load: {
      const auto &L = static_cast<const LoadRV &>(*A.R);
      if (!L.ValueTy->isPointer())
        return;
      if (DstIsStore) {
        // Cannot happen: SIMPLE allows one indirection per statement.
        assert(false && "store of a load in one statement");
        return;
      }
      Loads.push_back({Dst, varNode(L.Base), L.OffsetWords, L.ValueTy});
      return;
    }
    case RValueKind::FieldRead: {
      const auto &FR = static_cast<const FieldReadRV &>(*A.R);
      if (!FR.ValueTy->isPointer())
        return;
      connect(varFieldNode(FR.StructVar, FR.OffsetWords));
      return;
    }
    case RValueKind::AddrOfField: {
      const auto &AF = static_cast<const AddrOfFieldRV &>(*A.R);
      if (DstIsStore) {
        assert(false && "store of addr-of in one statement");
        return;
      }
      Offsets.push_back({Dst, varNode(AF.Base), AF.OffsetWords});
      return;
    }
    case RValueKind::Unary:
    case RValueKind::Binary:
      return; // Never pointer-valued in this dialect.
    }
    return;
  }
  case StmtKind::Call: {
    const auto &C = castStmt<CallStmt>(S);
    if (C.Intrin == Intrinsic::PMalloc) {
      if (C.Result && C.Result->type()->isPointer()) {
        unsigned Obj = static_cast<unsigned>(Objects.size());
        const Type *Pointee = C.Result->type()->pointee();
        Objects.push_back({/*IsAnchor=*/false, Obj,
                           Pointee->isStruct() ? Pointee->structType()
                                               : nullptr,
                           "site S" + std::to_string(S.label()) + "@" +
                               F.name()});
        Pts[varNode(C.Result)].insert({Obj, 0});
      }
      return;
    }
    if (!C.Callee)
      return;
    const Function *Callee = C.Callee;
    size_t N = std::min(C.Args.size(), Callee->params().size());
    for (size_t I = 0; I != N; ++I) {
      const Var *Param = Callee->params()[I];
      if (!Param->type()->isPointer())
        continue;
      const Operand &Arg = C.Args[I];
      if (Arg.isVar() && Arg.getVar()->type()->isPointer()) {
        // Evaluate both node ids before indexing: varNode() may grow the
        // CopyEdges vector and invalidate references.
        NodeId ArgNode = varNode(Arg.getVar());
        NodeId ParamNode = varNode(Param);
        CopyEdges[ArgNode].insert(ParamNode);
      }
    }
    if (C.Result && C.Result->type()->isPointer()) {
      NodeId Ret = retNode(Callee);
      NodeId Res = varNode(C.Result);
      CopyEdges[Ret].insert(Res);
    }
    return;
  }
  case StmtKind::Return: {
    const auto &R = castStmt<ReturnStmt>(S);
    if (R.Val && R.Val->isVar() && R.Val->getVar()->type()->isPointer()) {
      NodeId Src = varNode(R.Val->getVar());
      NodeId Ret = retNode(&F);
      CopyEdges[Src].insert(Ret);
    }
    return;
  }
  case StmtKind::BlkMov: {
    const auto &B = castStmt<BlkMovStmt>(S);
    // Word-wise pointer flow between *Ptr and the local struct.
    const StructType *ST = B.LocalStruct->type()->structType();
    for (unsigned Off = 0; Off != B.Words; ++Off) {
      const StructType::Field *Fld = ST->fieldAtOffset(Off);
      const Type *WordTy = Fld ? Fld->Ty : nullptr;
      // Nested structs: descend one level for pointer detection.
      if (Fld && Fld->Ty->isStruct()) {
        const StructType::Field *Inner =
            Fld->Ty->structType()->fieldAtOffset(Off - Fld->OffsetWords);
        WordTy = Inner ? Inner->Ty : nullptr;
      }
      if (!WordTy || !WordTy->isPointer())
        continue;
      if (B.Dir == BlkMovDir::ReadToLocal)
        Loads.push_back({varFieldNode(B.LocalStruct, Off), varNode(B.Ptr),
                         Off, WordTy});
      else
        Stores.push_back({varNode(B.Ptr), Off,
                          varFieldNode(B.LocalStruct, Off)});
    }
    return;
  }
  default:
    return;
  }
}

bool PointsToAnalysis::addTargets(NodeId N, const TargetSet &Ts) {
  bool Changed = false;
  for (Target T : Ts)
    Changed |= Pts[N].insert(T).second;
  return Changed;
}

void PointsToAnalysis::solve() {
  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Copy edges.
    for (NodeId Src = 0; Src != CopyEdges.size(); ++Src)
      for (NodeId Dst : CopyEdges[Src])
        Changed |= addTargets(Dst, Pts[Src]);

    // Offset constraints: Dst ⊇ pts(Base) + Off.
    for (const OffsetConstraint &OC : Offsets) {
      TargetSet Shifted;
      for (Target T : Pts[OC.Base])
        Shifted.insert({T.Obj, T.Off + OC.Off});
      Changed |= addTargets(OC.Dst, Shifted);
    }

    // Loads: Dst ⊇ *(pts(Base)+Off); pointer-typed loads out of a region
    // anchor yield the (type-segregated) derived region.
    for (const LoadConstraint &LC : Loads) {
      TargetSet Base = Pts[LC.Base]; // Copy: wordNode() may reallocate Pts.
      for (Target T : Base) {
        Target Word{T.Obj, T.Off + LC.Off};
        if (Objects[T.Obj].IsAnchor) {
          const Type *Pointee =
              LC.ValueTy && LC.ValueTy->isPointer() ? LC.ValueTy->pointee()
                                                    : nullptr;
          const StructType *S =
              Pointee && Pointee->isStruct() ? Pointee->structType() : nullptr;
          unsigned Region = regionOf(T.Obj, S);
          Changed |= Pts[LC.Dst].insert({Region, 0}).second;
        }
        NodeId W = wordNode(Word);
        Changed |= addTargets(LC.Dst, Pts[W]);
      }
    }

    // Stores: *(pts(Base)+Off) ⊇ pts(Src).
    for (const StoreConstraint &SC : Stores) {
      TargetSet Base = Pts[SC.Base];
      TargetSet Src = Pts[SC.Src];
      for (Target T : Base) {
        NodeId W = wordNode({T.Obj, T.Off + SC.Off});
        Changed |= addTargets(W, Src);
      }
    }
  }
}

const PointsToAnalysis::TargetSet &
PointsToAnalysis::pointsTo(const Var *V) const {
  auto It = VarNodes.find(V);
  return It == VarNodes.end() ? Empty : Pts[It->second];
}

PointsToAnalysis::TargetSet
PointsToAnalysis::accessedWords(const Var *P, unsigned OffP) const {
  TargetSet Out;
  for (Target T : pointsTo(P))
    Out.insert({T.Obj, T.Off + OffP});
  return Out;
}

bool PointsToAnalysis::mayAlias(const Var *P, unsigned OffP, const Var *Q,
                                unsigned OffQ) const {
  if (P == Q)
    return OffP == OffQ;
  // Allocation-free: pts sets are ordered by (Obj, Off), and shifting every
  // Off by a constant preserves that order, so the two accessed-word sets
  // can be intersected by a single two-pointer walk without materializing
  // either of them. This query sits on the innermost loop of the placement
  // kill checks and the selection invalidation walks.
  const TargetSet &A = pointsTo(P);
  if (A.empty())
    return false;
  const TargetSet &B = pointsTo(Q);
  auto I = A.begin(), IEnd = A.end();
  auto J = B.begin(), JEnd = B.end();
  while (I != IEnd && J != JEnd) {
    Target TA{I->Obj, I->Off + OffP};
    Target TB{J->Obj, J->Off + OffQ};
    if (TA < TB)
      ++I;
    else if (TB < TA)
      ++J;
    else
      return true;
  }
  return false;
}

std::string PointsToAnalysis::describeObject(unsigned Obj) const {
  assert(Obj < Objects.size() && "bad object id");
  return Objects[Obj].Name;
}
