//===- Placement.h - Possible-placement analysis ----------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's possible-placement analysis (Section 4.1, Figures 5 and 6).
///
/// It computes, for every statement S of a function:
///
///  - RemoteReads(S): the remote communication expressions (RCEs) that may
///    safely be issued *just before* S — propagated backwards, through a
///    single structured traversal, optimistically hoisted out of
///    conditionals (reads of spurious fields are safe) and out of loops
///    that cannot kill them;
///
///  - RemoteWrites(S): the RCEs that may safely be issued *just after* S —
///    propagated forwards, conservatively (a write may only move below a
///    conditional if it occurs in every alternative, and never out of a
///    loop that is not known to execute exactly once).
///
/// An RCE is the paper's 4-tuple (p, f, n, Dlist): base pointer, field
/// (word offset in our representation), estimated execution frequency, and
/// the set of basic-statement labels whose accesses the tuple covers.
/// Frequencies are adjusted ×LoopFactor when leaving a loop and
/// ÷#alternatives when leaving a conditional.
///
/// Kill rules (computed by SideEffects):
///  - a tuple (p,f) cannot cross a statement that writes p itself;
///  - a *read* tuple cannot cross a statement that may write p->f via an
///    alias (a direct write via p does NOT kill — blocked communication
///    later absorbs it into the local struct copy);
///  - a *write* tuple cannot cross a statement that may read or write p->f
///    via an alias, nor a return statement.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_ANALYSIS_PLACEMENT_H
#define EARTHCC_ANALYSIS_PLACEMENT_H

#include "analysis/SideEffects.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace earthcc {

class RemarkStream;

/// A remote communication expression: the paper's (p, f, n, Dlist) tuple.
struct RCE {
  const Var *Base = nullptr;
  unsigned Off = 0;
  std::string FieldName;          ///< For printing.
  const Type *ValueTy = nullptr;  ///< Scalar type of the accessed field.
  double Freq = 1.0;
  std::vector<int> DList;         ///< Sorted basic-statement labels.
  /// Location of the first access the tuple was generated from; carried so
  /// remarks and inserted communication keep a stable source anchor.
  SourceLoc Loc;

  /// Renders like the paper: "(p->x, 11, S4:S11)".
  std::string str() const;
};

/// Options for the placement analysis.
struct PlacementOptions {
  double LoopFrequencyFactor = 10.0; ///< Paper: "freq * 10" out of loops.
  bool OptimisticConditionalReads = true; ///< Hoist reads out of if-branches.
};

/// Result of possible-placement analysis on one function.
///
/// The per-statement sets are stored as *shared* sorted snapshots: the
/// analysis walks each sequence propagating only set deltas, and every run
/// of statements across which the set does not change shares one snapshot
/// vector (most statements neither generate a tuple nor can kill one, so
/// this is the common case). Consumers only ever read the vectors.
class PlacementResult {
public:
  /// RCEs placeable just before \p S (empty vector if none), sorted by
  /// (base variable id, offset).
  const std::vector<RCE> &readsBefore(const Stmt *S) const;
  /// RCEs placeable just after \p S.
  const std::vector<RCE> &writesAfter(const Stmt *S) const;

  using Snapshot = std::shared_ptr<const std::vector<RCE>>;
  using SetMap = std::unordered_map<const Stmt *, Snapshot>;
  SetMap BeforeReads;
  SetMap AfterWrites;

private:
  std::vector<RCE> Empty;
};

/// Runs possible-placement analysis over \p F. When \p Remarks is non-null,
/// the analysis emits one "placement" remark per tuple it hoists out of a
/// loop, carrying the frequency adjustment (the paper's x LoopFactor).
PlacementResult runPlacementAnalysis(const Function &F, const SideEffects &SE,
                                     const PlacementOptions &Opts = {},
                                     RemarkStream *Remarks = nullptr);

} // namespace earthcc

#endif // EARTHCC_ANALYSIS_PLACEMENT_H
