//===- SideEffects.h - Read/write sets for SIMPLE statements ----*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decorates statements with the side-effect information the paper's
/// possible-placement analysis consumes:
///
///  - varWritten(v, S): S (or anything nested in it, including calls'
///    results) assigns the variable v directly;
///  - accessedViaAlias(p, off, S, Write): S may read/write the memory that
///    `p->off` denotes through a base variable *different from* p, or
///    through a function call. Direct accesses via p itself are excluded —
///    the paper relies on that to keep read tuples alive across direct
///    writes (which blocked communication later absorbs into the local
///    struct copy).
///
/// Heap effects of calls are interprocedural: every function gets a summary
/// of abstract words (from PointsToAnalysis) it may read/write, closed over
/// the call graph by fixpoint (recursion-safe).
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_ANALYSIS_SIDEEFFECTS_H
#define EARTHCC_ANALYSIS_SIDEEFFECTS_H

#include "analysis/PointsTo.h"
#include "support/FlatSet.h"

#include <unordered_map>

namespace earthcc {

/// Module-wide side-effect information (see file comment).
class SideEffects {
public:
  /// Abstract heap words, as a hashed flat set (contiguous scan + O(1)
  /// membership; the summaries are built once and queried hot from the
  /// selection's invalidation walks).
  using WordSet =
      FlatSet<PointsToAnalysis::Target, PointsToAnalysis::TargetHash>;

  SideEffects(const Module &M, const PointsToAnalysis &PT);

  /// True if \p S may assign \p V directly (recursively over children).
  bool varWritten(const Var *V, const Stmt &S) const;

  /// True if \p S may access the words `pts(P)+Off` through an alias (a
  /// different base variable or a call). \p Write selects write effects;
  /// otherwise read effects.
  bool accessedViaAlias(const Var *P, unsigned Off, const Stmt &S,
                        bool Write) const;

  /// True if \p S contains any return statement (write tuples cannot sink
  /// across returns).
  bool containsReturn(const Stmt &S) const;

  /// Quick rejection for the placement/selection kill checks: false when
  /// \p S writes nothing at all (no variable assignments, no direct heap
  /// stores, no callee write effects) — then no read tuple and no live
  /// binding can be killed by it, and the per-tuple checks can be skipped
  /// wholesale.
  bool writesAnything(const Stmt &S) const;

  /// Quick rejection for the write-tuple kill check: false when \p S also
  /// performs no heap/call *read* and contains no return, i.e. no write
  /// tuple can be stopped by it.
  bool blocksWriteTuples(const Stmt &S) const;

  /// True if \p S (recursively) performs a *direct* heap read through the
  /// base variable \p P (any offset). Used by the RemoteFill elision check.
  bool directlyReads(const Var *P, const Stmt &S) const;

  /// True if \p S (recursively) performs a *direct* heap write through \p P
  /// at offset \p Off. Used to invalidate value caches across compound
  /// statements whose interior updates do not escape.
  bool directlyWrites(const Var *P, unsigned Off, const Stmt &S) const;

  /// Abstract words function \p F may read (write) — for tests.
  const WordSet &functionReads(const Function *F) const;
  const WordSet &functionWrites(const Function *F) const;

private:
  /// One direct heap access through a base variable.
  struct HeapAccess {
    const Var *Base;
    unsigned Off;
    bool IsWrite;
  };

  /// Aggregated effects of one statement subtree.
  struct StmtEffects {
    FlatSet<const Var *> VarWrites;
    std::vector<HeapAccess> Heap;
    WordSet CallReadWords;
    WordSet CallWriteWords;
    bool HasReturn = false;
    bool HasHeapWrite = false; ///< Any Heap entry with IsWrite.
    bool HasHeapRead = false;  ///< Any Heap entry without IsWrite.
  };

  void computeSummaries(const Module &M);
  StmtEffects computeStmt(const Stmt &S);
  const StmtEffects &effects(const Stmt &S) const;

  const PointsToAnalysis &PT;
  std::unordered_map<const Stmt *, StmtEffects> Cache;
  std::unordered_map<const Function *, WordSet> SummaryReads;
  std::unordered_map<const Function *, WordSet> SummaryWrites;
  WordSet Empty;
};

} // namespace earthcc

#endif // EARTHCC_ANALYSIS_SIDEEFFECTS_H
