//===- Locality.h - Locality inference for placed calls ---------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight version of the locality analysis the paper builds on
/// (Zhu & Hendren, PACT'97 — Phase II "Locality Analysis" in the paper's
/// Figure 2): it eliminates *pseudo-remote* operations, i.e. accesses the
/// compiler must otherwise assume remote but that provably hit local
/// memory.
///
/// The rule implemented here: if every call site of a function f places
/// the invocation at the owner of the pointer passed for parameter p
/// (`f(..., x, ...)@OWNER_OF(x)`), then inside f the memory *p is
/// node-local, and — provided f never reassigns p — every `p->field`
/// access can be downgraded from Remote to Local. This mirrors the
/// explicit `local` qualifier of EARTH-C (the paper's Figure 1 writes
/// `node local *p` by hand for exactly this situation) but infers it.
///
/// The simulator double-checks the inference: a Local access that reaches
/// a remote address is a hard runtime error, so unsoundness here cannot
/// silently corrupt experiments.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_ANALYSIS_LOCALITY_H
#define EARTHCC_ANALYSIS_LOCALITY_H

#include "simple/Function.h"
#include "support/Statistics.h"

namespace earthcc {

/// Runs locality inference over \p M and downgrades provably-local
/// accesses in place. Returns the number of accesses downgraded.
/// Statistics keys: locality.params_marked, locality.accesses_localized.
unsigned inferLocality(Module &M, Statistics &Stats);

} // namespace earthcc

#endif // EARTHCC_ANALYSIS_LOCALITY_H
