//===- Placement.cpp - Possible-placement analysis ------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Placement.h"

#include "support/Remark.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <unordered_map>

using namespace earthcc;

/// Renders a frequency the way RCE::str does: integral values without a
/// decimal point.
static std::string fmtFreq(double F) {
  std::ostringstream OS;
  if (F == std::floor(F))
    OS << static_cast<long long>(F);
  else
    OS << F;
  return OS.str();
}

std::string RCE::str() const {
  std::ostringstream OS;
  OS << "(" << Base->name() << "->"
     << (FieldName.empty() ? "*" : FieldName) << ", " << fmtFreq(Freq) << ", ";
  for (size_t I = 0; I != DList.size(); ++I)
    OS << (I ? ":" : "") << "S" << DList[I];
  OS << ")";
  return OS.str();
}

const std::vector<RCE> &PlacementResult::readsBefore(const Stmt *S) const {
  auto It = BeforeReads.find(S);
  return It == BeforeReads.end() || !It->second ? Empty : *It->second;
}

const std::vector<RCE> &PlacementResult::writesAfter(const Stmt *S) const {
  auto It = AfterWrites.find(S);
  return It == AfterWrites.end() || !It->second ? Empty : *It->second;
}

namespace {

/// Working sets are keyed by (base variable, word offset) so that tuples
/// for the same location merge by summing frequencies and uniting Dlists.
using RCEKey = std::pair<const Var *, unsigned>;

struct RCEKeyHash {
  size_t operator()(const RCEKey &K) const {
    return std::hash<const Var *>()(K.first) * 31 + K.second;
  }
};

/// Hash-indexed flat set of RCE tuples: contiguous storage (cheap to scan,
/// cheap to move tuples into) plus an unordered index for O(1) merging.
/// Iteration order is insertion order (deterministic: it only depends on
/// the order of add() calls); every output boundary goes through
/// snapshot(), which sorts by (variable id, offset).
///
/// The set doubles as the *running* set of the sequence walks: snapshot()
/// caches its sorted vector behind a shared_ptr, so a run of statements
/// across which the set does not change shares one snapshot and pays
/// neither a copy nor a sort — the delta-propagation fast path that makes
/// the analysis sparse.
class RCESet {
public:
  /// Inserts \p T, or merges it into the tuple already recorded for its
  /// location (frequencies add, Dlists unite; the earlier-inserted tuple's
  /// location/field/type metadata wins).
  void add(RCE T) {
    Sorted.reset();
    auto [It, Inserted] = Index.try_emplace({T.Base, T.Off}, Items.size());
    if (Inserted) {
      Items.push_back(std::move(T));
      return;
    }
    RCE &Existing = Items[It->second];
    Existing.Freq += T.Freq;
    std::vector<int> Merged;
    Merged.reserve(Existing.DList.size() + T.DList.size());
    std::set_union(Existing.DList.begin(), Existing.DList.end(),
                   T.DList.begin(), T.DList.end(), std::back_inserter(Merged));
    Existing.DList = std::move(Merged);
  }

  /// Replaces this set with "gen set \p Gen, plus every current tuple not
  /// killed by \p Killed" — the per-statement transfer of the sequence
  /// walks, performing exactly the add() sequence the full re-merge did
  /// (gen tuples first, then the survivors in their existing order), so
  /// merge metadata and iteration order are preserved. Call only when the
  /// set actually changes; the unchanged case shares the snapshot instead.
  template <typename KillFn> void mergeOver(RCESet Gen, KillFn &&Killed) {
    for (RCE &T : Items)
      if (!Killed(T))
        Gen.add(std::move(T));
    *this = std::move(Gen);
  }

  const RCE *find(const RCEKey &K) const {
    auto It = Index.find(K);
    return It == Index.end() ? nullptr : &Items[It->second];
  }
  bool contains(const RCEKey &K) const { return Index.count(K) != 0; }

  size_t size() const { return Items.size(); }
  bool empty() const { return Items.empty(); }
  std::vector<RCE>::const_iterator begin() const { return Items.begin(); }
  std::vector<RCE>::const_iterator end() const { return Items.end(); }

  /// The set as a shared, sorted (variable id, offset) vector. Cached until
  /// the next mutation, so consecutive statements with an unchanged set
  /// share one vector.
  PlacementResult::Snapshot snapshot() const {
    if (!Sorted) {
      auto Out = std::make_shared<std::vector<RCE>>(Items.begin(),
                                                    Items.end());
      std::sort(Out->begin(), Out->end(), [](const RCE &A, const RCE &B) {
        if (A.Base->id() != B.Base->id())
          return A.Base->id() < B.Base->id();
        return A.Off < B.Off;
      });
      Sorted = std::move(Out);
    }
    return Sorted;
  }

private:
  std::vector<RCE> Items;
  std::unordered_map<RCEKey, size_t, RCEKeyHash> Index;
  mutable PlacementResult::Snapshot Sorted;
};

class PlacementAnalyzer {
public:
  PlacementAnalyzer(const Function &F, const SideEffects &SE,
                    const PlacementOptions &Opts, RemarkStream *Remarks)
      : F(F), SE(SE), Opts(Opts), Remarks(Remarks) {}

  PlacementResult run() {
    collectReadsSeq(F.body());
    collectWritesSeq(F.body());
    return std::move(Result);
  }

private:
  //===--------------------------------------------------------------------===
  // Kill predicates.
  //===--------------------------------------------------------------------===

  bool killsRead(const RCE &T, const Stmt &S) const {
    if (SE.varWritten(T.Base, S))
      return true;
    return SE.accessedViaAlias(T.Base, T.Off, S, /*Write=*/true);
  }

  bool killsWrite(const RCE &T, const Stmt &S) const {
    if (SE.varWritten(T.Base, S))
      return true;
    if (SE.containsReturn(S))
      return true; // A write may never sink below a return.
    return SE.accessedViaAlias(T.Base, T.Off, S, /*Write=*/false) ||
           SE.accessedViaAlias(T.Base, T.Off, S, /*Write=*/true);
  }

  //===--------------------------------------------------------------------===
  // RemoteReads: backward propagation (paper Fig. 5/6, READ rules).
  //===--------------------------------------------------------------------===

  /// Returns the set of read RCEs placeable just before \p S (its "gen"
  /// set, in the paper's terms — what collectCommSet returns).
  RCESet collectReads(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      RCESet Out;
      if (A.isRemoteRead()) {
        const auto &L = static_cast<const LoadRV &>(*A.R);
        RCE T;
        T.Base = L.Base;
        T.Off = L.OffsetWords;
        T.FieldName = L.FieldName;
        T.ValueTy = L.ValueTy;
        T.Freq = 1.0;
        T.DList = {S.label()};
        T.Loc = S.loc();
        Out.add(std::move(T));
      }
      return Out;
    }
    case StmtKind::Call:
    case StmtKind::Return:
    case StmtKind::BlkMov:
    case StmtKind::Atomic:
      return {};
    case StmtKind::Seq: {
      const auto &Seq = castStmt<SeqStmt>(S);
      if (!Seq.Parallel)
        return collectReadsSeq(Seq);
      // Parallel sequence: branches are non-interfering; the set placeable
      // before the whole construct is the union of the branch tops.
      RCESet Out;
      for (const auto &Branch : Seq.Stmts)
        for (const RCE &T : collectReads(*Branch))
          Out.add(T);
      return Out;
    }
    case StmtKind::If: {
      const auto &If = castStmt<IfStmt>(S);
      RCESet ThenSet = collectReadsSeq(*If.Then);
      RCESet ElseSet = collectReadsSeq(*If.Else);
      if (!Opts.OptimisticConditionalReads)
        return {};
      // Reads may hoist out of either alternative (spurious reads are
      // safe); halve the frequency to reflect the branch.
      RCESet Out;
      for (const auto *Set : {&ThenSet, &ElseSet}) {
        for (const RCE &T : *Set) {
          RCE Adjusted = T;
          Adjusted.Freq = T.Freq / 2.0;
          Out.add(std::move(Adjusted));
        }
      }
      return Out;
    }
    case StmtKind::Switch: {
      const auto &Sw = castStmt<SwitchStmt>(S);
      if (!Opts.OptimisticConditionalReads)
        return {};
      std::vector<RCESet> Alternatives;
      for (const auto &C : Sw.Cases)
        Alternatives.push_back(collectReadsSeq(*C.Body));
      Alternatives.push_back(collectReadsSeq(*Sw.Default));
      double N = static_cast<double>(Alternatives.size());
      RCESet Out;
      for (const RCESet &Set : Alternatives) {
        for (const RCE &T : Set) {
          RCE Adjusted = T;
          Adjusted.Freq = T.Freq / N;
          Out.add(std::move(Adjusted));
        }
      }
      return Out;
    }
    case StmtKind::While: {
      const auto &W = castStmt<WhileStmt>(S);
      RCESet Body = collectReadsSeq(*W.Body);
      return hoistOutOfLoop(Body, S);
    }
    case StmtKind::Forall: {
      const auto &Fa = castStmt<ForallStmt>(S);
      RCESet Combined = collectReadsSeq(*Fa.Init);
      for (const RCE &T : collectReadsSeq(*Fa.Step))
        Combined.add(T);
      for (const RCE &T : collectReadsSeq(*Fa.Body))
        Combined.add(T);
      return hoistOutOfLoop(Combined, S);
    }
    }
    return {};
  }

  /// Filters \p BodySet by the loop's kill set and scales frequencies.
  RCESet hoistOutOfLoop(const RCESet &BodySet, const Stmt &Loop) {
    RCESet Out;
    for (const RCE &T : BodySet) {
      if (killsRead(T, Loop))
        continue;
      RCE Adjusted = T;
      Adjusted.Freq = T.Freq * Opts.LoopFrequencyFactor;
      if (Remarks) {
        Remark R;
        R.Pass = "placement";
        R.Category = "hoist-loop";
        R.Function = F.name();
        R.Loc = T.Loc;
        R.Message = "read " + T.Base->name() + "->" +
                    (T.FieldName.empty() ? "*" : T.FieldName) +
                    " may hoist out of loop: est. frequency " +
                    fmtFreq(T.Freq) + " -> " + fmtFreq(Adjusted.Freq) + " (x" +
                    fmtFreq(Opts.LoopFrequencyFactor) + ")";
        R.Args = {{"base", T.Base->name()},
                  {"field", T.FieldName.empty() ? "*" : T.FieldName},
                  {"freq_in", fmtFreq(T.Freq)},
                  {"freq_out", fmtFreq(Adjusted.Freq)},
                  {"factor", fmtFreq(Opts.LoopFrequencyFactor)}};
        Remarks->emit(std::move(R));
      }
      Out.add(std::move(Adjusted));
    }
    return Out;
  }

  /// The paper's collectCommReadsSeq: backward walk recording the set
  /// placeable just before every element. Sparse: per statement only the
  /// delta (gen tuples, killed tuples) is applied to the running set, and
  /// statements that neither generate nor can kill (the common case) share
  /// the predecessor's snapshot unchanged.
  RCESet collectReadsSeq(const SeqStmt &Seq) {
    if (Seq.Stmts.empty())
      return {};
    RCESet Curr = collectReads(*Seq.Stmts.back());
    Result.BeforeReads[Seq.Stmts.back().get()] = Curr.snapshot();
    for (size_t I = Seq.Stmts.size() - 1; I-- > 0;) {
      const Stmt &Pred = *Seq.Stmts[I];
      // Always collect (it also records results for nested statements).
      RCESet Gen = collectReads(Pred);
      // A statement that writes nothing kills nothing.
      bool CanKill = !Curr.empty() && SE.writesAnything(Pred);
      if (!Gen.empty() || CanKill)
        Curr.mergeOver(std::move(Gen), [&](const RCE &T) {
          return CanKill && killsRead(T, Pred);
        });
      Result.BeforeReads[&Pred] = Curr.snapshot();
    }
    return Curr;
  }

  //===--------------------------------------------------------------------===
  // RemoteWrites: forward propagation (paper Fig. 5/6, WRITE rules).
  //===--------------------------------------------------------------------===

  RCESet collectWrites(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      RCESet Out;
      if (A.isRemoteWrite()) {
        RCE T;
        T.Base = A.L.V;
        T.Off = A.L.OffsetWords;
        T.FieldName = A.L.FieldName;
        T.ValueTy = nullptr;
        T.Freq = 1.0;
        T.DList = {S.label()};
        T.Loc = S.loc();
        Out.add(std::move(T));
      }
      return Out;
    }
    case StmtKind::Call:
    case StmtKind::Return:
    case StmtKind::BlkMov:
    case StmtKind::Atomic:
      return {};
    case StmtKind::Seq: {
      const auto &Seq = castStmt<SeqStmt>(S);
      if (!Seq.Parallel)
        return collectWritesSeq(Seq);
      RCESet Out;
      for (const auto &Branch : Seq.Stmts)
        for (const RCE &T : collectWrites(*Branch))
          Out.add(T);
      return Out;
    }
    case StmtKind::If: {
      const auto &If = castStmt<IfStmt>(S);
      RCESet ThenSet = collectWritesSeq(*If.Then);
      RCESet ElseSet = collectWritesSeq(*If.Else);
      // Conservative: only writes present in BOTH alternatives may move
      // below the conditional (it is never safe to write spurious fields).
      RCESet Out;
      for (const RCE &T : ThenSet) {
        const RCE *Other = ElseSet.find({T.Base, T.Off});
        if (!Other)
          continue;
        RCE A = T;
        A.Freq = T.Freq / 2.0;
        Out.add(std::move(A));
        RCE B = *Other;
        B.Freq = B.Freq / 2.0;
        Out.add(std::move(B));
      }
      return Out;
    }
    case StmtKind::Switch: {
      const auto &Sw = castStmt<SwitchStmt>(S);
      std::vector<RCESet> Alternatives;
      for (const auto &C : Sw.Cases)
        Alternatives.push_back(collectWritesSeq(*C.Body));
      Alternatives.push_back(collectWritesSeq(*Sw.Default));
      if (Alternatives.empty())
        return {};
      double N = static_cast<double>(Alternatives.size());
      RCESet Out;
      for (const RCE &T : Alternatives.front()) {
        RCEKey Key{T.Base, T.Off};
        bool InAll = true;
        for (size_t I = 1; I < Alternatives.size() && InAll; ++I)
          InAll = Alternatives[I].contains(Key);
        if (!InAll)
          continue;
        for (const RCESet &Set : Alternatives) {
          RCE A = *Set.find(Key);
          A.Freq /= N;
          Out.add(std::move(A));
        }
      }
      return Out;
    }
    case StmtKind::While:
    case StmtKind::Forall:
      // Loops are not known to execute exactly once: writes stay inside
      // (the paper's executesOnce() guard; we have no such static proof).
      collectWritesSeq(loopBody(S));
      if (S.kind() == StmtKind::Forall) {
        collectWritesSeq(*castStmt<ForallStmt>(S).Init);
        collectWritesSeq(*castStmt<ForallStmt>(S).Step);
      }
      return {};
    }
    return {};
  }

  static const SeqStmt &loopBody(const Stmt &S) {
    if (const auto *W = dynCastStmt<WhileStmt>(&S))
      return *W->Body;
    return *castStmt<ForallStmt>(S).Body;
  }

  /// Forward counterpart of collectReadsSeq, with the same sparse delta
  /// propagation.
  RCESet collectWritesSeq(const SeqStmt &Seq) {
    if (Seq.Stmts.empty())
      return {};
    RCESet Curr = collectWrites(*Seq.Stmts.front());
    Result.AfterWrites[Seq.Stmts.front().get()] = Curr.snapshot();
    for (size_t I = 1; I != Seq.Stmts.size(); ++I) {
      const Stmt &Succ = *Seq.Stmts[I];
      RCESet Gen = collectWrites(Succ);
      bool CanKill = !Curr.empty() && SE.blocksWriteTuples(Succ);
      if (!Gen.empty() || CanKill)
        Curr.mergeOver(std::move(Gen), [&](const RCE &T) {
          return CanKill && killsWrite(T, Succ);
        });
      Result.AfterWrites[&Succ] = Curr.snapshot();
    }
    return Curr;
  }

  const Function &F;
  const SideEffects &SE;
  const PlacementOptions &Opts;
  RemarkStream *Remarks = nullptr;
  PlacementResult Result;
};

} // namespace

PlacementResult earthcc::runPlacementAnalysis(const Function &F,
                                              const SideEffects &SE,
                                              const PlacementOptions &Opts,
                                              RemarkStream *Remarks) {
  return PlacementAnalyzer(F, SE, Opts, Remarks).run();
}
