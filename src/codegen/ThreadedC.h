//===- ThreadedC.h - Threaded-C code emission -------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase III of the EARTH-McCAT pipeline: lowering optimized SIMPLE into
/// Threaded-C, the explicitly-threaded C dialect of the EARTH runtime.
/// This emitter produces the textual Threaded-C program:
///
///  - every split-phase operation becomes an EARTH primitive with an
///    explicit sync slot (`GET_SYNC_L`, `DATA_SYNC_L`, `BLKMOV_SYNC`);
///  - fibers are split at synchronization points: a statement that *uses*
///    the result of an outstanding split-phase operation starts a new
///    thread (`THREAD_n:`) guarded by the slot's sync count, which is how
///    EARTH overlaps communication with computation;
///  - parallel sequences and forall loops become TOKEN spawns plus a join
///    slot; placed calls become INVOKE tokens.
///
/// The emitter consumes the *flat bytecode stream* the simulator executes
/// (interp/Lower.cpp), not the SIMPLE statement tree: construct structure is
/// decoded from the BcCtor-tagged Enter instructions and the patched jump
/// targets, and sync-slot numbering, frame-slot layout, and dead-label
/// facts come from the shared backend view (interp/BackendView.h). The
/// bytecode is therefore the single source of truth for slot numbering —
/// the engines and every backend agree by construction. Only the plain
/// (unfused) stream is read, so `--fuse=on|off` cannot change the emitted
/// program (pinned by the codegen tests).
///
/// The earthcc execution path interprets the same bytecode on the simulator
/// (see DESIGN.md), so this emitter is a faithful *presentation* of Phase
/// III rather than a second execution engine; tests pin down the thread
/// partitioning and the slot discipline.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_CODEGEN_THREADEDC_H
#define EARTHCC_CODEGEN_THREADEDC_H

#include "interp/Lower.h"

#include <string>

namespace earthcc {

/// Statistics of one function's lowering.
struct ThreadedCInfo {
  unsigned Threads = 0;   ///< Fibers the body was partitioned into.
  unsigned SyncSlots = 0; ///< Sync slots allocated.
};

/// Emits Threaded-C for one lowered function. \p Info (optional) receives
/// counts. Reads only \p BF's plain (unfused) instruction stream.
std::string emitThreadedC(const BytecodeModule &BM, const BytecodeFunction &BF,
                          ThreadedCInfo *Info = nullptr);

/// Convenience overload: lowers \p M on first use (memoized on the module's
/// execution cache) and emits \p F.
std::string emitThreadedC(const Module &M, const Function &F,
                          ThreadedCInfo *Info = nullptr);

/// Emits Threaded-C for a whole lowered module.
std::string emitThreadedC(const BytecodeModule &BM);

/// Convenience overload: lowers \p M on first use, then emits every function.
std::string emitThreadedC(const Module &M);

} // namespace earthcc

#endif // EARTHCC_CODEGEN_THREADEDC_H
