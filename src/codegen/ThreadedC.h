//===- ThreadedC.h - Threaded-C code emission -------------------*- C++ -*-===//
//
// Part of the earthcc project: a reproduction of "Communication Optimizations
// for Parallel C Programs" (Zhu & Hendren, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase III of the EARTH-McCAT pipeline: lowering optimized SIMPLE into
/// Threaded-C, the explicitly-threaded C dialect of the EARTH runtime.
/// This emitter produces the textual Threaded-C program:
///
///  - every split-phase operation becomes an EARTH primitive with an
///    explicit sync slot (`GET_SYNC_L`, `DATA_SYNC_L`, `BLKMOV_SYNC`);
///  - fibers are split at synchronization points: a statement that *uses*
///    the result of an outstanding split-phase operation starts a new
///    thread (`THREAD_n:`) guarded by the slot's sync count, which is how
///    EARTH overlaps communication with computation;
///  - parallel sequences and forall loops become TOKEN spawns plus a join
///    slot; placed calls become INVOKE tokens.
///
/// The earthcc execution path interprets SIMPLE directly on the simulator
/// (see DESIGN.md), so this emitter is a faithful *presentation* of Phase
/// III rather than a second execution engine; tests pin down the thread
/// partitioning and the slot discipline.
///
//===----------------------------------------------------------------------===//

#ifndef EARTHCC_CODEGEN_THREADEDC_H
#define EARTHCC_CODEGEN_THREADEDC_H

#include "simple/Function.h"

#include <string>

namespace earthcc {

/// Statistics of one function's lowering.
struct ThreadedCInfo {
  unsigned Threads = 0;   ///< Fibers the body was partitioned into.
  unsigned SyncSlots = 0; ///< Sync slots allocated.
};

/// Emits Threaded-C for one function. \p Info (optional) receives counts.
std::string emitThreadedC(const Function &F, ThreadedCInfo *Info = nullptr);

/// Emits Threaded-C for a whole module.
std::string emitThreadedC(const Module &M);

} // namespace earthcc

#endif // EARTHCC_CODEGEN_THREADEDC_H
