//===- ThreadedC.cpp ------------------------------------------------------===//
//
// Part of the earthcc project.
//
// Threaded-C emission over the flat bytecode stream. The emitter never
// consults the SIMPLE statement tree: structure comes from the BcCtor tags
// on Enter instructions plus the patched jump targets, sync-slot numbers and
// the split-phase classification come from the shared backend view, and all
// names/field/condition text comes from the bytecode operands and the view's
// presentation notes. emitLevel() walks one sequence level and returns the
// pc after the EndSeq that terminates it; constructs recurse, with fiber
// regions (parallel branches, forall bodies) spliced in at their spawn
// sites — the same emission order the view numbers sync slots in.
//
//===----------------------------------------------------------------------===//

#include "codegen/ThreadedC.h"

#include "interp/BackendView.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace earthcc;

namespace {

/// Emits one lowered function, tracking outstanding split-phase operations
/// and splitting fibers at synchronization points.
class Emitter {
public:
  Emitter(const BytecodeFunction &BF, const BcBackendView &View)
      : BF(BF), View(View), Code(BF.Code) {}

  std::string run(ThreadedCInfo *Info) {
    OS << "THREADED " << BF.Fn->name() << "(";
    for (size_t I = 0; I != BF.ParamSlots.size(); ++I) {
      const Var *P = BF.Slots[BF.ParamSlots[I]].V;
      OS << (I ? ", " : "") << P->type()->str() << " " << P->name();
    }
    OS << ") {\n";
    for (const BcSlot &S : BF.Slots)
      if (S.V->kind() != VarKind::Param)
        OS << "  " << S.V->type()->str() << " " << S.V->name() << ";\n";
    OS << "  SLOT SYNC_SLOTS[];\n";
    OS << "\n  THREAD_0:\n";
    emitLevel(0, 2);
    OS << "  END_THREADED();\n}\n";
    if (Info) {
      Info->Threads = ThreadCount + 1;
      Info->SyncSlots = View.SyncSlotCount;
    }
    return OS.str();
  }

private:
  void indent(unsigned N) { OS << std::string(N, ' '); }

  unsigned slotAt(int32_t PC) const {
    assert(View.SyncSlotAt[PC] >= 0 && "instruction was not allocated a slot");
    return static_cast<unsigned>(View.SyncSlotAt[PC]);
  }

  /// Starts a new fiber because \p SyncedVars' transactions must complete.
  void splitThread(unsigned Ind, const std::vector<const Var *> &SyncedVars) {
    ++ThreadCount;
    indent(Ind);
    OS << "END_THREAD(); // fiber boundary\n";
    indent(Ind - 2 < 2 ? 2 : Ind - 2);
    OS << "THREAD_" << ThreadCount << ": // resumes when";
    for (const Var *V : SyncedVars)
      OS << " SLOT(" << Pending[V] << ")->" << V->name();
    OS << " arrive\n";
    for (const Var *V : SyncedVars)
      Pending.erase(V);
  }

  //===--------------------------------------------------------------------===
  // Operand and expression text.
  //===--------------------------------------------------------------------===

  static std::string constStr(const RtValue &C) {
    return C.K == RtValue::Kind::Int ? std::to_string(C.I)
                                     : std::to_string(C.D);
  }

  static std::string opndStr(const BcOperand &O) {
    return O.Kind == BcOperand::K::Slot ? O.V->name() : constStr(O.Const);
  }

  static std::string remoteMark(Locality Loc) {
    return Loc == Locality::Local ? "" : "{r}";
  }

  /// Rebuilds printRValue()'s text for the Assign at \p PC from the
  /// instruction fields and the view notes.
  std::string rvalueText(int32_t PC) const {
    const BcInsn &I = Code[PC];
    const BcBackendView::InsnNotes &N = View.Notes[PC];
    switch (static_cast<RValueKind>(I.RK)) {
    case RValueKind::Opnd:
      return opndStr(I.X);
    case RValueKind::Unary:
      return std::string(unaryOpName(static_cast<UnaryOp>(I.Sub))) +
             opndStr(I.X);
    case RValueKind::Binary:
      return opndStr(I.X) + " " +
             binaryOpName(static_cast<BinaryOp>(I.Sub)) + " " + opndStr(I.Y);
    case RValueKind::Load: {
      std::string Acc = N.RField.empty() ? "*" + N.AV->name()
                                         : N.AV->name() + "->" + N.RField;
      return Acc + remoteMark(static_cast<Locality>(N.RLoc));
    }
    case RValueKind::FieldRead:
      return N.AV->name() + "." + N.RField;
    case RValueKind::AddrOfField:
      return "&(" + N.AV->name() + "->" + N.RField + ")";
    }
    return "<bad rvalue>";
  }

  /// Rebuilds printLValue()'s text for the Assign at \p PC.
  std::string lvalueText(int32_t PC) const {
    const BcInsn &I = Code[PC];
    const BcBackendView::InsnNotes &N = View.Notes[PC];
    switch (static_cast<LValueKind>(I.LK)) {
    case LValueKind::Var:
      return N.DstV->name();
    case LValueKind::Store: {
      std::string Acc = N.LField.empty() ? "*" + N.DstV->name()
                                         : N.DstV->name() + "->" + N.LField;
      return Acc + remoteMark(static_cast<Locality>(I.Loc));
    }
    case LValueKind::FieldWrite:
      return N.DstV->name() + "." + N.LField;
    }
    return "<bad lvalue>";
  }

  /// Text of the condition encoded in the Br/LoopCond/ForallCond at \p PC.
  /// Pure shapes rebuild from the operands; impure conditions (BcBadCondRK
  /// carries no operands) use the view's pre-printed text.
  std::string condText(int32_t PC) const {
    const BcInsn &I = Code[PC];
    if (I.RK == BcBadCondRK)
      return View.Notes[PC].CondText;
    switch (static_cast<RValueKind>(I.RK)) {
    case RValueKind::Opnd:
      return opndStr(I.X);
    case RValueKind::Unary:
      return std::string(unaryOpName(static_cast<UnaryOp>(I.Sub))) +
             opndStr(I.X);
    case RValueKind::Binary:
      return opndStr(I.X) + " " +
             binaryOpName(static_cast<BinaryOp>(I.Sub)) + " " + opndStr(I.Y);
    default:
      return "<bad cond>";
    }
  }

  //===--------------------------------------------------------------------===
  // Pending-use collection (fiber-boundary detection).
  //===--------------------------------------------------------------------===

  /// Collects the pending variables the basic instruction at \p PC
  /// consumes, in operand order (duplicates kept: `x + x` waits twice).
  std::vector<const Var *> pendingUses(int32_t PC) {
    const BcInsn &I = Code[PC];
    const BcBackendView::InsnNotes &N = View.Notes[PC];
    std::vector<const Var *> Used;
    auto use = [&](const BcOperand &O) {
      if (O.Kind == BcOperand::K::Slot && O.V && Pending.count(O.V))
        Used.push_back(O.V);
    };
    auto useVar = [&](const Var *V) {
      if (V && Pending.count(V))
        Used.push_back(V);
    };
    switch (I.Op) {
    case BcOp::Assign: {
      switch (static_cast<RValueKind>(I.RK)) {
      case RValueKind::Opnd:
      case RValueKind::Unary:
        use(I.X);
        break;
      case RValueKind::Binary:
        use(I.X);
        use(I.Y);
        break;
      case RValueKind::Load:
      case RValueKind::FieldRead:
      case RValueKind::AddrOfField:
        useVar(N.AV);
        break;
      }
      const auto LK = static_cast<LValueKind>(I.LK);
      if (LK == LValueKind::Store || LK == LValueKind::FieldWrite)
        useVar(N.DstV);
      return Used;
    }
    case BcOp::Call:
      for (uint32_t A = 0; A != I.Words; ++A)
        use(BF.ArgPool[I.A + A]);
      use(I.Y);
      return Used;
    case BcOp::Return:
      use(I.X);
      return Used;
    case BcOp::BlkMov:
      useVar(N.AV);
      if (static_cast<BlkMovDir>(I.Sub) == BlkMovDir::WriteFromLocal)
        useVar(N.BV);
      return Used;
    case BcOp::Atomic:
      use(I.X);
      return Used;
    default:
      return Used;
    }
  }

  /// Pending variables a condition consumes. Impure conditions carry no
  /// operands and consume nothing (parity with the tree walk).
  std::vector<const Var *> condUses(int32_t PC) {
    const BcInsn &I = Code[PC];
    std::vector<const Var *> Used;
    if (I.RK == BcBadCondRK)
      return Used;
    auto use = [&](const BcOperand &O) {
      if (O.Kind == BcOperand::K::Slot && O.V && Pending.count(O.V))
        Used.push_back(O.V);
    };
    switch (static_cast<RValueKind>(I.RK)) {
    case RValueKind::Opnd:
    case RValueKind::Unary:
      use(I.X);
      break;
    case RValueKind::Binary:
      use(I.X);
      use(I.Y);
      break;
    default:
      break;
    }
    return Used;
  }

  void splitIfPending(const std::vector<const Var *> &Synced, unsigned Ind) {
    if (!Synced.empty())
      splitThread(Ind, Synced);
  }

  //===--------------------------------------------------------------------===
  // Stream traversal.
  //===--------------------------------------------------------------------===

  /// Emits one sequence level starting at \p PC and returns the pc after
  /// the EndSeq that terminates it. Constructs are consumed whole via their
  /// Enter tags; every other instruction at this level is a basic statement.
  int32_t emitLevel(int32_t PC, unsigned Ind) {
    while (true) {
      switch (Code[PC].Op) {
      case BcOp::EndSeq:
        return PC + 1;
      case BcOp::ImplicitRet:
        // A fiber region shaped as a bare basic/compound statement falls
        // directly into the frame pop (Simplify never produces this; the
        // lowering keeps the shape for parity with the AST walker).
        return PC;
      case BcOp::Enter:
        PC = emitConstruct(PC, Ind);
        break;
      case BcOp::ParSpawn:
        // A parallel sequence that *is* a fiber region (a branch of an
        // enclosing parallel sequence) has no Enter of its own: the spawned
        // fiber starts directly at its ParSpawn.
        emitPar(PC, Ind);
        PC += 2; // Skip the Join.
        break;
      default:
        emitBasic(PC, Ind);
        ++PC;
        break;
      }
    }
  }

  /// Emits the parallel sequence whose ParSpawn is at \p SpawnPC.
  void emitPar(int32_t SpawnPC, unsigned Ind) {
    const BcInsn &Spawn = Code[SpawnPC];
    indent(Ind);
    OS << "// parallel sequence: " << Spawn.Words << " tokens + join slot\n";
    unsigned Join = slotAt(SpawnPC);
    for (uint32_t Br = 0; Br != Spawn.Words; ++Br) {
      indent(Ind);
      OS << "TOKEN(branch, SLOT(" << Join << ")) {\n";
      emitLevel(BF.BranchPool[Spawn.B + Br], Ind + 2);
      indent(Ind);
      OS << "}\n";
    }
    indent(Ind);
    OS << "SYNC_JOIN(SLOT(" << Join << "), " << Spawn.Words << ");\n";
    splitThread(Ind, {});
  }

  /// Emits the construct whose Enter is at \p PC; returns the pc after it.
  int32_t emitConstruct(int32_t PC, unsigned Ind) {
    switch (static_cast<BcCtor>(Code[PC].Ctor)) {
    case BcCtor::Seq:
      // A nested sequential sequence: transparent in the emitted text.
      return emitLevel(PC + 1, Ind);

    case BcCtor::Par:
      // Enter, ParSpawn, Join; branches are out-of-line fiber regions.
      emitPar(PC + 1, Ind);
      return PC + 3;

    case BcCtor::If: {
      // Enter, Br, then..., ThenEnd, else..., ElseEnd, EndCompound.
      splitIfPending(condUses(PC + 1), Ind);
      indent(Ind);
      OS << "if (" << condText(PC + 1) << ") {\n";
      int32_t ElsePC = emitLevel(PC + 2, Ind + 2);
      bool ElseEmpty = Code[ElsePC].Op == BcOp::EndSeq;
      if (!ElseEmpty) {
        indent(Ind);
        OS << "} else {\n";
      }
      int32_t EndPC = emitLevel(ElsePC, Ind + 2); // The EndCompound.
      indent(Ind);
      OS << "}\n";
      return EndPC + 1;
    }

    case BcCtor::While: {
      // Enter, LoopCond, body..., BodyEnd; exit target is BodyEnd + 1.
      splitIfPending(condUses(PC + 1), Ind);
      indent(Ind);
      OS << "while (" << condText(PC + 1) << ") {\n";
      int32_t After = emitLevel(PC + 2, Ind + 2);
      indent(Ind);
      OS << "}\n";
      return After;
    }

    case BcCtor::DoWhile: {
      // Enter, Enter(body), body..., BodyEnd, LoopCond. The condition is
      // consumed before the body is entered, exactly like the tree walk.
      int32_t CondPC = bcSeqEnd(BF, PC + 2) + 1;
      splitIfPending(condUses(CondPC), Ind);
      indent(Ind);
      OS << "do {\n";
      emitLevel(PC + 2, Ind + 2);
      indent(Ind);
      OS << "} while (" << condText(CondPC) << ");\n";
      return CondPC + 1;
    }

    case BcCtor::Switch: {
      // Enter, Switch, cases..., default..., EndCompound.
      const BcInsn &Sw = Code[PC + 1];
      splitIfPending(
          [&] {
            std::vector<const Var *> Used;
            if (Sw.X.Kind == BcOperand::K::Slot && Sw.X.V &&
                Pending.count(Sw.X.V))
              Used.push_back(Sw.X.V);
            return Used;
          }(),
          Ind);
      indent(Ind);
      OS << "switch (" << opndStr(Sw.X) << ") {\n";
      for (uint32_t CI = 0; CI != Sw.Words; ++CI) {
        const auto &Case = BF.CasePool[Sw.B + CI];
        indent(Ind);
        OS << "case " << Case.first << ":\n";
        emitLevel(Case.second, Ind + 2);
        indent(Ind + 2);
        OS << "break;\n";
      }
      indent(Ind);
      OS << "default:\n";
      int32_t EndPC = emitLevel(Sw.A, Ind + 2); // The EndCompound.
      indent(Ind);
      OS << "}\n";
      return EndPC + 1;
    }

    case BcCtor::Forall: {
      // Enter, ForallInit, init..., InitEnd, ForallCond, step..., StepEnd,
      // Join; the body is an out-of-line fiber region at ForallCond.A.
      int32_t CondPC = bcSeqEnd(BF, PC + 2) + 1;
      splitIfPending(condUses(CondPC), Ind);
      unsigned Join = slotAt(PC + 1);
      indent(Ind);
      OS << "// forall driver: spawns one token per iteration\n";
      emitLevel(PC + 2, Ind); // Init, at the driver's own indent.
      indent(Ind);
      OS << "while (" << condText(CondPC) << ") {\n";
      indent(Ind + 2);
      OS << "TOKEN(iteration, SLOT(" << Join << ")) {\n";
      emitLevel(Code[CondPC].A, Ind + 4); // Body fiber region.
      indent(Ind + 2);
      OS << "}\n";
      int32_t JoinPC = emitLevel(CondPC + 1, Ind + 2); // Step -> the Join.
      indent(Ind);
      OS << "}\n";
      indent(Ind);
      OS << "SYNC_JOIN(SLOT(" << Join << "), ALL_ITERATIONS);\n";
      splitThread(Ind, {});
      return JoinPC + 1;
    }

    case BcCtor::None:
    case BcCtor::DoWhileBody:
      break;
    }
    assert(false && "untagged or interior Enter reached emitConstruct");
    return PC + 1;
  }

  //===--------------------------------------------------------------------===
  // Basic statements.
  //===--------------------------------------------------------------------===

  void emitBasic(int32_t PC, unsigned Ind) {
    // Fiber boundary: this statement consumes outstanding split-phase
    // results, so it belongs to a new thread triggered by their slots.
    splitIfPending(pendingUses(PC), Ind);

    const BcInsn &I = Code[PC];
    const BcBackendView::InsnNotes &N = View.Notes[PC];
    switch (I.Op) {
    case BcOp::Assign: {
      bool RemoteRead =
          static_cast<RValueKind>(I.RK) == RValueKind::Load &&
          static_cast<Locality>(N.RLoc) != Locality::Local;
      if (RemoteRead) {
        unsigned Slot = slotAt(PC);
        indent(Ind);
        OS << "GET_SYNC_L(" << N.AV->name() << " + " << I.Off << ", &"
           << N.DstV->name() << ", SLOT(" << Slot << ")); // " << N.AV->name()
           << "->" << (N.RField.empty() ? "*" : N.RField) << "\n";
        Pending[N.DstV] = Slot;
        return;
      }
      bool RemoteWrite = static_cast<LValueKind>(I.LK) == LValueKind::Store &&
                         static_cast<Locality>(I.Loc) != Locality::Local;
      if (RemoteWrite) {
        indent(Ind);
        OS << "DATA_SYNC_L(" << rvalueText(PC) << ", " << N.DstV->name()
           << " + " << static_cast<uint32_t>(I.B) << ", WSYNC); // "
           << N.DstV->name() << "->" << N.LField << "\n";
        return;
      }
      indent(Ind);
      OS << lvalueText(PC) << " = " << rvalueText(PC) << ";\n";
      return;
    }
    case BcOp::BlkMov: {
      unsigned Slot = slotAt(PC);
      indent(Ind);
      if (static_cast<BlkMovDir>(I.Sub) == BlkMovDir::ReadToLocal) {
        OS << "BLKMOV_SYNC(" << N.AV->name() << ", &" << N.BV->name() << ", "
           << I.Words * 8 << ", SLOT(" << Slot << "));\n";
        Pending[N.BV] = Slot;
      } else {
        OS << "BLKMOV_SYNC(&" << N.BV->name() << ", " << N.AV->name() << ", "
           << I.Words * 8 << ", WSYNC);\n";
      }
      return;
    }
    case BcOp::Call: {
      indent(Ind);
      if (static_cast<CallPlacement>(I.Place) != CallPlacement::Default) {
        unsigned Slot = slotAt(PC);
        OS << "INVOKE(";
        switch (static_cast<CallPlacement>(I.Place)) {
        case CallPlacement::OwnerOf:
          OS << "OWNER_OF(" << opndStr(I.Y) << ")";
          break;
        case CallPlacement::AtNode:
          OS << "NODE(" << opndStr(I.Y) << ")";
          break;
        default:
          OS << "HOME";
          break;
        }
        OS << ", " << N.CalleeName << "(";
        for (uint32_t A = 0; A != I.Words; ++A)
          OS << (A ? ", " : "") << opndStr(BF.ArgPool[I.A + A]);
        OS << ")";
        if (N.DstV) {
          OS << ", &" << N.DstV->name() << ", SLOT(" << Slot << ")";
          Pending[N.DstV] = Slot;
        }
        OS << ");\n";
        return;
      }
      if (N.DstV)
        OS << N.DstV->name() << " = ";
      OS << N.CalleeName << "(";
      for (uint32_t A = 0; A != I.Words; ++A)
        OS << (A ? ", " : "") << opndStr(BF.ArgPool[I.A + A]);
      OS << ");\n";
      return;
    }
    case BcOp::Return: {
      indent(Ind);
      OS << "RETURN(";
      if (I.X.Kind != BcOperand::K::None)
        OS << opndStr(I.X);
      OS << "); // settles WSYNC before signalling the caller\n";
      return;
    }
    case BcOp::Atomic: {
      indent(Ind);
      switch (static_cast<AtomicOp>(I.Sub)) {
      case AtomicOp::WriteTo:
        OS << "WRITETO_SYNC(&" << N.AV->name() << ", " << opndStr(I.X)
           << ", WSYNC);\n";
        return;
      case AtomicOp::AddTo:
        OS << "ADDTO_SYNC(&" << N.AV->name() << ", " << opndStr(I.X)
           << ", WSYNC);\n";
        return;
      case AtomicOp::ValueOf: {
        unsigned Slot = slotAt(PC);
        OS << "VALUEOF_SYNC(&" << N.AV->name() << ", &" << N.DstV->name()
           << ", SLOT(" << Slot << "));\n";
        Pending[N.DstV] = Slot;
        return;
      }
      }
      return;
    }
    default:
      assert(false && "control opcode reached emitBasic");
      return;
    }
  }

  const BytecodeFunction &BF;
  const BcBackendView &View;
  const std::vector<BcInsn> &Code; ///< Always the plain (unfused) stream.
  std::ostringstream OS;
  std::map<const Var *, unsigned> Pending;
  unsigned ThreadCount = 0;
};

} // namespace

std::string earthcc::emitThreadedC(const BytecodeModule &BM,
                                   const BytecodeFunction &BF,
                                   ThreadedCInfo *Info) {
  BcBackendView View = buildBackendView(BM, BF);
  return Emitter(BF, View).run(Info);
}

std::string earthcc::emitThreadedC(const Module &M, const Function &F,
                                   ThreadedCInfo *Info) {
  const BytecodeModule &BM = getOrLowerBytecode(M);
  const BytecodeFunction *BF = BM.function(&F);
  assert(BF && "function is not part of the lowered module");
  return emitThreadedC(BM, *BF, Info);
}

std::string earthcc::emitThreadedC(const BytecodeModule &BM) {
  std::string Out;
  for (const auto &BF : BM.Funcs)
    Out += emitThreadedC(BM, *BF) + "\n";
  return Out;
}

std::string earthcc::emitThreadedC(const Module &M) {
  return emitThreadedC(getOrLowerBytecode(M));
}
