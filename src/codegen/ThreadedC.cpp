//===- ThreadedC.cpp ------------------------------------------------------===//
//
// Part of the earthcc project.
//
//===----------------------------------------------------------------------===//

#include "codegen/ThreadedC.h"

#include "simple/Printer.h"

#include <map>
#include <sstream>

using namespace earthcc;

namespace {

/// Emits one function, tracking outstanding split-phase operations and
/// splitting fibers at synchronization points.
class Emitter {
public:
  explicit Emitter(const Function &F) : F(F) {}

  std::string run(ThreadedCInfo *Info) {
    OS << "THREADED " << F.name() << "(";
    for (size_t I = 0; I != F.params().size(); ++I) {
      const Var *P = F.params()[I];
      OS << (I ? ", " : "") << P->type()->str() << " " << P->name();
    }
    OS << ") {\n";
    for (const auto &V : F.vars())
      if (V->kind() != VarKind::Param)
        OS << "  " << V->type()->str() << " " << V->name() << ";\n";
    OS << "  SLOT SYNC_SLOTS[];\n";
    OS << "\n  THREAD_0:\n";
    emitSeq(F.body(), 2);
    OS << "  END_THREADED();\n}\n";
    if (Info) {
      Info->Threads = ThreadCount + 1;
      Info->SyncSlots = SlotCount;
    }
    return OS.str();
  }

private:
  void indent(unsigned N) { OS << std::string(N, ' '); }

  unsigned newSlot() { return SlotCount++; }

  /// Starts a new fiber because \p SyncedVars' transactions must complete.
  void splitThread(unsigned Ind, const std::vector<const Var *> &SyncedVars) {
    ++ThreadCount;
    indent(Ind);
    OS << "END_THREAD(); // fiber boundary\n";
    indent(Ind - 2 < 2 ? 2 : Ind - 2);
    OS << "THREAD_" << ThreadCount << ": // resumes when";
    for (const Var *V : SyncedVars)
      OS << " SLOT(" << Pending[V] << ")->" << V->name();
    OS << " arrive\n";
    for (const Var *V : SyncedVars)
      Pending.erase(V);
  }

  /// Collects the pending variables that \p S consumes.
  std::vector<const Var *> pendingUses(const Stmt &S) {
    std::vector<const Var *> Used;
    auto use = [&](const Operand &O) {
      if (O.isVar() && Pending.count(O.getVar()))
        Used.push_back(O.getVar());
    };
    auto useVar = [&](const Var *V) {
      if (V && Pending.count(V))
        Used.push_back(V);
    };
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      switch (A.R->kind()) {
      case RValueKind::Opnd:
        use(static_cast<const OpndRV &>(*A.R).Val);
        break;
      case RValueKind::Unary:
        use(static_cast<const UnaryRV &>(*A.R).Val);
        break;
      case RValueKind::Binary: {
        const auto &B = static_cast<const BinaryRV &>(*A.R);
        use(B.A);
        use(B.B);
        break;
      }
      case RValueKind::Load:
        useVar(static_cast<const LoadRV &>(*A.R).Base);
        break;
      case RValueKind::FieldRead:
        useVar(static_cast<const FieldReadRV &>(*A.R).StructVar);
        break;
      case RValueKind::AddrOfField:
        useVar(static_cast<const AddrOfFieldRV &>(*A.R).Base);
        break;
      }
      if (A.L.Kind == LValueKind::Store)
        useVar(A.L.V);
      if (A.L.Kind == LValueKind::FieldWrite)
        useVar(A.L.V);
      return Used;
    }
    case StmtKind::Call: {
      const auto &C = castStmt<CallStmt>(S);
      for (const Operand &O : C.Args)
        use(O);
      use(C.PlacementArg);
      return Used;
    }
    case StmtKind::Return: {
      const auto &R = castStmt<ReturnStmt>(S);
      if (R.Val)
        use(*R.Val);
      return Used;
    }
    case StmtKind::BlkMov: {
      const auto &B = castStmt<BlkMovStmt>(S);
      useVar(B.Ptr);
      if (B.Dir == BlkMovDir::WriteFromLocal)
        useVar(B.LocalStruct);
      return Used;
    }
    case StmtKind::Atomic: {
      const auto &A = castStmt<AtomicStmt>(S);
      use(A.Val);
      return Used;
    }
    case StmtKind::If:
      collectCondUses(*castStmt<IfStmt>(S).Cond, Used);
      return Used;
    case StmtKind::While:
      collectCondUses(*castStmt<WhileStmt>(S).Cond, Used);
      return Used;
    case StmtKind::Switch:
      use(castStmt<SwitchStmt>(S).Val);
      return Used;
    case StmtKind::Forall:
      collectCondUses(*castStmt<ForallStmt>(S).Cond, Used);
      return Used;
    case StmtKind::Seq:
      return Used;
    }
    return Used;
  }

  void collectCondUses(const RValue &R, std::vector<const Var *> &Used) {
    auto use = [&](const Operand &O) {
      if (O.isVar() && Pending.count(O.getVar()))
        Used.push_back(O.getVar());
    };
    switch (R.kind()) {
    case RValueKind::Opnd:
      use(static_cast<const OpndRV &>(R).Val);
      return;
    case RValueKind::Unary:
      use(static_cast<const UnaryRV &>(R).Val);
      return;
    case RValueKind::Binary: {
      const auto &B = static_cast<const BinaryRV &>(R);
      use(B.A);
      use(B.B);
      return;
    }
    default:
      return;
    }
  }

  void emitSeq(const SeqStmt &Seq, unsigned Ind) {
    if (Seq.Parallel) {
      indent(Ind);
      OS << "// parallel sequence: " << Seq.size()
         << " tokens + join slot\n";
      unsigned Join = newSlot();
      for (const auto &Branch : Seq.Stmts) {
        indent(Ind);
        OS << "TOKEN(branch, SLOT(" << Join << ")) {\n";
        emitSeq(castStmt<SeqStmt>(*Branch), Ind + 2);
        indent(Ind);
        OS << "}\n";
      }
      indent(Ind);
      OS << "SYNC_JOIN(SLOT(" << Join << "), " << Seq.size() << ");\n";
      splitThread(Ind, {});
      return;
    }
    for (const auto &Child : Seq.Stmts)
      emitStmt(*Child, Ind);
  }

  void emitStmt(const Stmt &S, unsigned Ind) {
    // Fiber boundary: this statement consumes outstanding split-phase
    // results, so it belongs to a new thread triggered by their slots.
    std::vector<const Var *> Synced = pendingUses(S);
    if (!Synced.empty())
      splitThread(Ind, Synced);

    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto &A = castStmt<AssignStmt>(S);
      if (A.isRemoteRead()) {
        const auto &L = static_cast<const LoadRV &>(*A.R);
        unsigned Slot = newSlot();
        indent(Ind);
        OS << "GET_SYNC_L(" << L.Base->name() << " + " << L.OffsetWords
           << ", &" << A.L.V->name() << ", SLOT(" << Slot << ")); // "
           << L.Base->name() << "->"
           << (L.FieldName.empty() ? "*" : L.FieldName) << "\n";
        Pending[A.L.V] = Slot;
        return;
      }
      if (A.isRemoteWrite()) {
        indent(Ind);
        OS << "DATA_SYNC_L(" << printRValue(*A.R) << ", " << A.L.V->name()
           << " + " << A.L.OffsetWords << ", WSYNC); // " << A.L.V->name()
           << "->" << A.L.FieldName << "\n";
        return;
      }
      indent(Ind);
      OS << printLValue(A.L) << " = " << printRValue(*A.R) << ";\n";
      return;
    }
    case StmtKind::BlkMov: {
      const auto &B = castStmt<BlkMovStmt>(S);
      unsigned Slot = newSlot();
      indent(Ind);
      if (B.Dir == BlkMovDir::ReadToLocal) {
        OS << "BLKMOV_SYNC(" << B.Ptr->name() << ", &"
           << B.LocalStruct->name() << ", " << B.Words * 8 << ", SLOT("
           << Slot << "));\n";
        Pending[B.LocalStruct] = Slot;
      } else {
        OS << "BLKMOV_SYNC(&" << B.LocalStruct->name() << ", "
           << B.Ptr->name() << ", " << B.Words * 8 << ", WSYNC);\n";
      }
      return;
    }
    case StmtKind::Call: {
      const auto &C = castStmt<CallStmt>(S);
      indent(Ind);
      if (C.Placement != CallPlacement::Default) {
        unsigned Slot = newSlot();
        OS << "INVOKE(";
        switch (C.Placement) {
        case CallPlacement::OwnerOf:
          OS << "OWNER_OF(" << C.PlacementArg.str() << ")";
          break;
        case CallPlacement::AtNode:
          OS << "NODE(" << C.PlacementArg.str() << ")";
          break;
        default:
          OS << "HOME";
          break;
        }
        OS << ", " << C.CalleeName << "(";
        for (size_t I = 0; I != C.Args.size(); ++I)
          OS << (I ? ", " : "") << C.Args[I].str();
        OS << ")";
        if (C.Result) {
          OS << ", &" << C.Result->name() << ", SLOT(" << Slot << ")";
          Pending[C.Result] = Slot;
        }
        OS << ");\n";
        return;
      }
      if (C.Result)
        OS << C.Result->name() << " = ";
      OS << C.CalleeName << "(";
      for (size_t I = 0; I != C.Args.size(); ++I)
        OS << (I ? ", " : "") << C.Args[I].str();
      OS << ");\n";
      return;
    }
    case StmtKind::Return: {
      const auto &R = castStmt<ReturnStmt>(S);
      indent(Ind);
      OS << "RETURN(";
      if (R.Val)
        OS << R.Val->str();
      OS << "); // settles WSYNC before signalling the caller\n";
      return;
    }
    case StmtKind::Atomic: {
      const auto &A = castStmt<AtomicStmt>(S);
      indent(Ind);
      switch (A.Op) {
      case AtomicOp::WriteTo:
        OS << "WRITETO_SYNC(&" << A.SharedVar->name() << ", " << A.Val.str()
           << ", WSYNC);\n";
        return;
      case AtomicOp::AddTo:
        OS << "ADDTO_SYNC(&" << A.SharedVar->name() << ", " << A.Val.str()
           << ", WSYNC);\n";
        return;
      case AtomicOp::ValueOf: {
        unsigned Slot = newSlot();
        OS << "VALUEOF_SYNC(&" << A.SharedVar->name() << ", &"
           << A.Result->name() << ", SLOT(" << Slot << "));\n";
        Pending[A.Result] = Slot;
        return;
      }
      }
      return;
    }
    case StmtKind::If: {
      const auto &If = castStmt<IfStmt>(S);
      indent(Ind);
      OS << "if (" << printRValue(*If.Cond) << ") {\n";
      emitSeq(*If.Then, Ind + 2);
      if (!If.Else->empty()) {
        indent(Ind);
        OS << "} else {\n";
        emitSeq(*If.Else, Ind + 2);
      }
      indent(Ind);
      OS << "}\n";
      return;
    }
    case StmtKind::Switch: {
      const auto &Sw = castStmt<SwitchStmt>(S);
      indent(Ind);
      OS << "switch (" << Sw.Val.str() << ") {\n";
      for (const auto &C : Sw.Cases) {
        indent(Ind);
        OS << "case " << C.Value << ":\n";
        emitSeq(*C.Body, Ind + 2);
        indent(Ind + 2);
        OS << "break;\n";
      }
      indent(Ind);
      OS << "default:\n";
      emitSeq(*Sw.Default, Ind + 2);
      indent(Ind);
      OS << "}\n";
      return;
    }
    case StmtKind::While: {
      const auto &W = castStmt<WhileStmt>(S);
      indent(Ind);
      if (W.IsDoWhile) {
        OS << "do {\n";
        emitSeq(*W.Body, Ind + 2);
        indent(Ind);
        OS << "} while (" << printRValue(*W.Cond) << ");\n";
      } else {
        OS << "while (" << printRValue(*W.Cond) << ") {\n";
        emitSeq(*W.Body, Ind + 2);
        indent(Ind);
        OS << "}\n";
      }
      return;
    }
    case StmtKind::Forall: {
      const auto &Fa = castStmt<ForallStmt>(S);
      unsigned Join = newSlot();
      indent(Ind);
      OS << "// forall driver: spawns one token per iteration\n";
      emitSeq(*Fa.Init, Ind);
      indent(Ind);
      OS << "while (" << printRValue(*Fa.Cond) << ") {\n";
      indent(Ind + 2);
      OS << "TOKEN(iteration, SLOT(" << Join << ")) {\n";
      emitSeq(*Fa.Body, Ind + 4);
      indent(Ind + 2);
      OS << "}\n";
      emitSeq(*Fa.Step, Ind + 2);
      indent(Ind);
      OS << "}\n";
      indent(Ind);
      OS << "SYNC_JOIN(SLOT(" << Join << "), ALL_ITERATIONS);\n";
      splitThread(Ind, {});
      return;
    }
    case StmtKind::Seq:
      emitSeq(castStmt<SeqStmt>(S), Ind);
      return;
    }
  }

  const Function &F;
  std::ostringstream OS;
  std::map<const Var *, unsigned> Pending;
  unsigned SlotCount = 0;
  unsigned ThreadCount = 0;
};

} // namespace

std::string earthcc::emitThreadedC(const Function &F, ThreadedCInfo *Info) {
  return Emitter(F).run(Info);
}

std::string earthcc::emitThreadedC(const Module &M) {
  std::string Out;
  for (const auto &F : M.functions())
    Out += emitThreadedC(*F) + "\n";
  return Out;
}
